"""The typed result object model: :class:`ExperimentResult` and its tables.

Every experiment in the reproduction — the seven figure runners and the
registered scenario sweeps — ultimately produces numbers: per-run gain
samples, BER distributions, sweep series, headline scalars.  Until this
module existed those numbers were trapped inside rendered plain-text
tables; downstream tooling had to re-parse what the repo had just
formatted.  :class:`ExperimentResult` is the stable programmatic contract
instead:

* **tables** — named :class:`Series` (columns + rows of JSON scalars)
  hold the per-run and aggregated data each experiment reports;
* **scalars** — headline numbers (mean overlap, crossover SNR, ...);
* **metadata** — experiment name, a config snapshot plus digest, the
  master seed, engine cache/timing statistics, and a versioned schema
  tag so readers can detect incompatible exports;
* **lossless serialization** — ``to_dict``/``from_dict`` round-trip
  exactly (``from_dict(to_dict(r)) == r``), with JSON and sectioned-CSV
  exports layered on top.

Plain-text rendering is a *view* over this model
(:func:`repro.results.render.render_text`), byte-identical to the legacy
``.render()`` reports, so nothing downstream of the text output changes.
See ``docs/API.md`` for the schema reference.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

#: Versioned schema tag embedded in every export.  Bump the trailing
#: integer on any backward-incompatible change to the serialized layout;
#: readers (``from_dict``) reject exports whose tag they do not know.
SCHEMA_VERSION = "anc-repro.result/1"

#: Scalar cell types a :class:`Series` may hold (the JSON scalar types).
Cell = Union[int, float, str, bool, None]


def _is_cell(value: Any) -> bool:
    """Is ``value`` a permitted series cell (a *finite* JSON scalar)?

    NaN and infinities are rejected: strict JSON cannot carry them, and a
    NaN would silently break the ``from_dict(to_dict(r)) == r`` guarantee
    (``NaN != NaN``).  Producers that can yield non-finite values (e.g. a
    capacity crossover outside the swept grid) omit the entry instead.
    """
    if isinstance(value, float):
        return math.isfinite(value)
    return value is None or isinstance(value, (bool, int, str))


def _jsonify(value: Any) -> Any:
    """Recursively coerce tuples to lists so equality survives JSON I/O."""
    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if _is_cell(value):
        return value
    raise ConfigurationError(
        "result metadata must be finite JSON-serializable scalars/lists/maps, "
        f"got {value!r}"
    )


def config_digest(config_snapshot: Mapping[str, Any]) -> str:
    """Stable short digest of a config snapshot (for result identity)."""
    blob = json.dumps(_jsonify(config_snapshot), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


class Record(Mapping):
    """One row of a :class:`Series`, viewed as an immutable mapping.

    Records compare equal to plain dicts with the same items, support
    ``record["column"]`` access, and preserve the series' column order.
    """

    __slots__ = ("_values",)

    def __init__(self, columns: Sequence[str], row: Sequence[Cell]) -> None:
        """Bind one row of cells to its column names."""
        self._values: Dict[str, Cell] = dict(zip(columns, row))

    def __getitem__(self, key: str) -> Cell:
        """Cell value of one column."""
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        """Iterate the column names in series order."""
        return iter(self._values)

    def __len__(self) -> int:
        """Number of columns."""
        return len(self._values)

    def __repr__(self) -> str:
        """Debug rendering (mapping-style)."""
        return f"Record({self._values!r})"


@dataclass(frozen=True)
class Series:
    """One named table of an :class:`ExperimentResult`.

    Attributes
    ----------
    name:
        Table identifier within the result (e.g. ``"gains"``).
    columns:
        Column names, in presentation order.
    rows:
        The data, one tuple of JSON scalars per row; every row must have
        exactly one cell per column.
    """

    name: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Cell, ...], ...] = ()

    def __post_init__(self) -> None:
        """Normalise nested sequences to tuples and validate the shape."""
        object.__setattr__(self, "columns", tuple(str(c) for c in self.columns))
        object.__setattr__(self, "rows", tuple(tuple(row) for row in self.rows))
        if not self.name:
            raise ConfigurationError("a series needs a non-empty name")
        if not self.columns:
            raise ConfigurationError(f"series {self.name!r} needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ConfigurationError(f"series {self.name!r} has duplicate column names")
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ConfigurationError(
                    f"series {self.name!r}: row {row!r} does not match "
                    f"columns {self.columns!r}"
                )
            for value in row:
                if not _is_cell(value):
                    raise ConfigurationError(
                        f"series {self.name!r}: cell {value!r} is not a finite JSON scalar"
                    )

    def __len__(self) -> int:
        """Number of rows."""
        return len(self.rows)

    def column(self, name: str) -> List[Cell]:
        """All values of one column, in row order."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise ConfigurationError(
                f"series {self.name!r} has no column {name!r}; "
                f"columns are {', '.join(self.columns)}"
            ) from None
        return [row[index] for row in self.rows]

    def records(self) -> List[Record]:
        """Every row as a :class:`Record` mapping."""
        return [Record(self.columns, row) for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data representation (JSON-ready)."""
        return {
            "name": self.name,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Series":
        """Rebuild a series from :meth:`to_dict` output (lossless)."""
        try:
            return cls(
                name=payload["name"],
                columns=tuple(payload["columns"]),
                rows=tuple(tuple(row) for row in payload["rows"]),
            )
        except KeyError as missing:
            raise ConfigurationError(f"series payload is missing key {missing}") from None


@dataclass(frozen=True)
class ExperimentResult:
    """Typed, serializable outcome of one experiment run.

    Attributes
    ----------
    name:
        Registry name of the experiment (e.g. ``"alice-bob"``,
        ``"chain_sweep"``) — the same name :func:`repro.api.run` accepts.
    kind:
        ``"figure"`` for the paper-figure runners, ``"scenario"`` for
        registered scenario sweeps.
    config:
        JSON snapshot of the :class:`~repro.experiments.config.ExperimentConfig`
        the run used.
    config_digest:
        Short stable digest of ``config`` (cheap identity check).
    seed:
        The master random seed (also present in ``config``; duplicated as
        a first-class field because it is the key replication knob).
    series:
        The result tables, keyed by series name, in presentation order.
    scalars:
        Headline scalar results (e.g. ``mean_overlap``, ``crossover_db``).
    meta:
        Free-form metadata: the renderer tag, engine cache/timing
        statistics, sweep parameters, library version.
    schema_version:
        Serialization schema tag (see :data:`SCHEMA_VERSION`).
    """

    name: str
    kind: str
    config: Mapping[str, Any]
    config_digest: str = ""
    seed: int = 0
    series: Mapping[str, Series] = field(default_factory=dict)
    scalars: Mapping[str, float] = field(default_factory=dict)
    meta: Mapping[str, Any] = field(default_factory=dict)
    schema_version: str = SCHEMA_VERSION

    def __post_init__(self) -> None:
        """Normalise containers to JSON-clean dicts and fill the digest."""
        object.__setattr__(self, "config", _jsonify(dict(self.config)))
        object.__setattr__(self, "scalars", {
            str(key): value for key, value in dict(self.scalars).items()
        })
        for key, value in self.scalars.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ConfigurationError(f"scalar {key!r} must be a number, got {value!r}")
            if isinstance(value, float) and not math.isfinite(value):
                raise ConfigurationError(
                    f"scalar {key!r} must be finite (got {value!r}); omit "
                    "undefined scalars instead of storing NaN/inf"
                )
        object.__setattr__(self, "meta", _jsonify(dict(self.meta)))
        series = dict(self.series)
        for key, table in series.items():
            if not isinstance(table, Series):
                raise ConfigurationError(f"series {key!r} must be a Series instance")
            if table.name != key:
                raise ConfigurationError(
                    f"series key {key!r} does not match table name {table.name!r}"
                )
        object.__setattr__(self, "series", series)
        if not self.config_digest:
            object.__setattr__(self, "config_digest", config_digest(self.config))

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def get_series(self, name: str) -> Series:
        """Look up one result table by name."""
        try:
            return self.series[name]
        except KeyError:
            raise ConfigurationError(
                f"result {self.name!r} has no series {name!r}; "
                f"available: {', '.join(self.series) or '(none)'}"
            ) from None

    def with_meta(self, **entries: Any) -> "ExperimentResult":
        """A copy with extra metadata entries merged in."""
        merged = dict(self.meta)
        merged.update(entries)
        return replace(self, meta=merged)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless plain-data representation (JSON-ready).

        ``from_dict(to_dict(result)) == result`` holds exactly: every
        container is already JSON-clean and every cell is a JSON scalar.
        """
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "kind": self.kind,
            "config": dict(self.config),
            "config_digest": self.config_digest,
            "seed": self.seed,
            "series": [table.to_dict() for table in self.series.values()],
            "scalars": dict(self.scalars),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (lossless).

        Raises :class:`~repro.exceptions.ConfigurationError` when the
        payload's schema tag is missing or unknown, so readers fail loudly
        on exports from an incompatible version instead of mis-parsing.
        """
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported result schema {version!r} (expected {SCHEMA_VERSION!r})"
            )
        try:
            tables = [Series.from_dict(entry) for entry in payload["series"]]
            return cls(
                name=payload["name"],
                kind=payload["kind"],
                config=payload["config"],
                config_digest=payload["config_digest"],
                seed=payload["seed"],
                series={table.name: table for table in tables},
                scalars=payload["scalars"],
                meta=payload["meta"],
                schema_version=version,
            )
        except KeyError as missing:
            raise ConfigurationError(f"result payload is missing key {missing}") from None

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a strict RFC-compliant JSON document.

        ``allow_nan=False`` is defensive: construction already rejects
        non-finite numbers, so a violation here means a bug upstream.
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Parse a result from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid result JSON: {error}") from None
        if not isinstance(payload, dict):
            raise ConfigurationError("result JSON must be an object")
        return cls.from_dict(payload)

    def to_csv(self) -> str:
        """Serialize to sectioned CSV (schema-versioned, machine-readable).

        Layout: a header section of ``key,value`` pairs (schema version,
        name, kind, digest, seed), a ``[scalars]`` section, then one
        ``[series <name>]`` section per table with a column-header row
        followed by the data rows.  Floats are written with ``repr``-exact
        precision, so a reader recovers the same values JSON would carry.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(["schema_version", self.schema_version])
        writer.writerow(["name", self.name])
        writer.writerow(["kind", self.kind])
        writer.writerow(["config_digest", self.config_digest])
        writer.writerow(["seed", self.seed])
        writer.writerow(["[scalars]"])
        writer.writerow(["key", "value"])
        for key, value in self.scalars.items():
            writer.writerow([key, repr(float(value))])
        for table in self.series.values():
            writer.writerow([f"[series {table.name}]"])
            writer.writerow(list(table.columns))
            for row in table.rows:
                writer.writerow([
                    repr(cell) if isinstance(cell, float) and not isinstance(cell, bool)
                    else ("" if cell is None else cell)
                    for cell in row
                ])
        return buffer.getvalue()


def result_fields() -> List[str]:
    """Names of the top-level result fields (the schema's key set)."""
    return [f.name for f in fields(ExperimentResult)]
