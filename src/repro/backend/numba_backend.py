"""The ``numba`` compute backend — JIT-compiled batched decode kernels.

Importing this module never imports :mod:`numba`;
:func:`make_numba_backend` attempts the import on first use and, when
numba is absent, degrades to the numpy reference kernels after emitting
a one-time :class:`NumbaFallbackWarning`.  That keeps the backend
registry safe to expose in dependency-free environments (CI's default
job, the packaged wheel) while letting an optional-deps install pick up
the JIT path with no code change.

Bit-exactness discipline
------------------------
The backend is registered **digest-neutral**, so its decode output must
match the scalar reference.  The JIT kernels therefore only fuse
operations whose IEEE-754 results are *exactly specified* — add,
subtract, multiply, divide, square root, comparisons and absolute value
— evaluated in the reference kernels' exact expression order.  The two
operations whose last-ULP rounding is library-specific stay in numpy:

* ``np.angle`` / ``arctan2`` (numpy ships SIMD implementations that may
  round differently from a scalar libm ``atan2``), so the Lemma 6.1
  kernel JITs the candidate *products* and hands them back for one
  vectorized ``np.angle`` pass;
* ``|y|`` for complex ``y`` (``hypot``-style, not exactly rounded), so
  the squared magnitudes are precomputed with numpy and passed in.

The per-backend differential suite
(``tests/properties/test_batch_equivalence.py``) asserts decoded bits
and structural diagnostics equal to the scalar reference; the matching
kernel's error *values* follow the same exactly-rounded arithmetic, with
the caveat documented on :func:`_jit_match` for NaN inputs.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Optional

import numpy as np

from repro.anc.batch import (
    BatchMatchResult,
    BatchPhaseSolutions,
    _amplitude_products,
    _MINUS_PI_TOLERANCE,
    batch_differential_bits,
    batch_match_phase_differences,
    batch_phase_solutions,
)
from repro.backend import Backend
from repro.backend.numpy_backend import (
    demodulate_phase_differences,
    modulate_waveform,
)
from repro.exceptions import DecodingError
from repro.utils.angles import TWO_PI


class NumbaFallbackWarning(RuntimeWarning):
    """Warned once when the numba backend degrades to the numpy kernels."""


#: One-time guard for the fallback warning.
_FALLBACK_WARNED = False

#: Compiled kernels, built once per process on first real-numba use.
_JIT_KERNELS: Optional[Dict[str, Any]] = None


def _import_numba():
    """Return the numba module, or ``None`` when it is not installed."""
    try:
        import numba  # noqa: PLC0415 - deliberate lazy optional import
    except ImportError:
        return None
    return numba


def _warn_fallback_once() -> None:
    """Emit the one-time degradation warning."""
    global _FALLBACK_WARNED
    if not _FALLBACK_WARNED:
        _FALLBACK_WARNED = True
        warnings.warn(
            "numba is not installed; the 'numba' compute backend is running "
            "the numpy reference kernels instead (install numba to enable "
            "the JIT decode path)",
            NumbaFallbackWarning,
            stacklevel=3,
        )


def _build_jit_kernels(numba) -> Dict[str, Any]:
    """Compile the JIT kernels (once per process).

    Defined inside a function so the module can be imported without
    numba; every ``@njit`` decoration happens only when numba exists.
    """
    njit = numba.njit
    two_pi = float(TWO_PI)
    pi = float(np.pi)
    minus_pi_tol = float(_MINUS_PI_TOLERANCE)

    @njit(cache=False)
    def _wrap_fast(angle: float) -> float:
        # Scalarized repro.anc.batch._wrap_angle_fast: same precondition
        # (input in (-2*pi, 2*pi]), same exactly-rounded operations in
        # the same order, including the isclose(-pi) snap.
        wrapped = angle + pi
        if wrapped < 0.0:
            wrapped += two_pi
        elif wrapped >= two_pi:
            wrapped -= two_pi
        wrapped -= pi
        if abs(wrapped + pi) <= minus_pi_tol:
            wrapped = pi
        return wrapped

    @njit(cache=False)
    def _jit_solution_products(samples, magnitude_sq, a, b, a_sq, b_sq, two_ab):
        """Cosine plus the four Lemma 6.1 candidate products, fused.

        Emits ``y * (a + b*cos -/+ 1j*b*sin)`` and the phi twins exactly
        as numpy evaluates them (real/imaginary parts written out), so a
        single ``np.angle`` pass outside reproduces the reference
        solutions.  Only exactly-rounded operations appear here.
        """
        n_trials, n_samples = samples.shape
        cosine = np.empty((n_trials, n_samples), dtype=np.float64)
        p_theta1 = np.empty((n_trials, n_samples), dtype=np.complex128)
        p_phi1 = np.empty((n_trials, n_samples), dtype=np.complex128)
        p_theta2 = np.empty((n_trials, n_samples), dtype=np.complex128)
        p_phi2 = np.empty((n_trials, n_samples), dtype=np.complex128)
        for t in range(n_trials):
            at = a[t]
            bt = b[t]
            for n in range(n_samples):
                c = (magnitude_sq[t, n] - a_sq[t] - b_sq[t]) / two_ab[t]
                if c < -1.0:
                    c = -1.0
                elif c > 1.0:
                    c = 1.0
                s = np.sqrt(max(1.0 - c * c, 0.0))
                cosine[t, n] = c
                y = samples[t, n]
                yr = y.real
                yi = y.imag
                # w = a + b*c -/+ 1j*b*s  (theta branches)
                wr = at + bt * c
                wi = bt * s
                p_theta1[t, n] = complex(yr * wr - yi * (-wi), yr * (-wi) + yi * wr)
                p_theta2[t, n] = complex(yr * wr - yi * wi, yr * wi + yi * wr)
                # w = b + a*c +/- 1j*a*s  (phi branches)
                wr = bt + at * c
                wi = at * s
                p_phi1[t, n] = complex(yr * wr - yi * wi, yr * wi + yi * wr)
                p_phi2[t, n] = complex(yr * wr - yi * (-wi), yr * (-wi) + yi * wr)
        return cosine, p_theta1, p_phi1, p_theta2, p_phi2

    @njit(cache=False)
    def _jit_match(theta1, theta2, phi1, phi2, known):
        """Fused Eq. 7-8 matching: candidates, errors, argmin, slicing.

        Candidate enumeration order and the strict ``<`` comparison
        reproduce ``np.argmin``'s first-wins tie-break over the
        reference's ``reshape(4, ...)`` layout (index ``x * 2 + y``).
        One documented divergence: with NaN inputs ``np.argmin`` selects
        the first NaN candidate while this loop never selects NaN —
        unreachable from the decoder, whose inputs are finite angles.
        """
        n_trials, n_intervals = known.shape
        selected_phi = np.empty((n_trials, n_intervals), dtype=np.float64)
        selected_theta = np.empty((n_trials, n_intervals), dtype=np.float64)
        selected_errors = np.empty((n_trials, n_intervals), dtype=np.float64)
        bits = np.empty((n_trials, n_intervals), dtype=np.uint8)
        for t in range(n_trials):
            for n in range(n_intervals):
                target = known[t, n]
                best_index = 0
                best_error = np.inf
                best_theta = 0.0
                for index in range(4):
                    x = index >> 1
                    y = index & 1
                    later = theta1[t, n + 1] if x == 0 else theta2[t, n + 1]
                    earlier = theta1[t, n] if y == 0 else theta2[t, n]
                    delta_theta = _wrap_fast(later - earlier)
                    error = abs(_wrap_fast(delta_theta - target))
                    if error < best_error:
                        best_error = error
                        best_index = index
                        best_theta = delta_theta
                x = best_index >> 1
                y = best_index & 1
                later = phi1[t, n + 1] if x == 0 else phi2[t, n + 1]
                earlier = phi1[t, n] if y == 0 else phi2[t, n]
                delta_phi = _wrap_fast(later - earlier)
                selected_phi[t, n] = delta_phi
                selected_theta[t, n] = best_theta
                selected_errors[t, n] = best_error
                bits[t, n] = 1 if delta_phi >= 0.0 else 0
        return selected_phi, selected_theta, selected_errors, bits

    return {
        "solution_products": _jit_solution_products,
        "match": _jit_match,
    }


def _jit_phase_solutions(samples, amplitudes_a, amplitudes_b) -> BatchPhaseSolutions:
    """Numba-accelerated :func:`repro.anc.batch.batch_phase_solutions`."""
    a_col, b_col, a_sq, b_sq, two_ab = _amplitude_products(amplitudes_a, amplitudes_b)
    y = np.ascontiguousarray(np.asarray(samples, dtype=np.complex128))
    if y.shape[1] == 0:
        empty = np.zeros(y.shape, dtype=float)
        return BatchPhaseSolutions(empty, empty, empty, empty, empty)
    magnitude_sq = np.abs(y) ** 2  # numpy cabs: not exactly rounded, keep it
    kernels = _JIT_KERNELS
    assert kernels is not None
    cosine, p_theta1, p_phi1, p_theta2, p_phi2 = kernels["solution_products"](
        y,
        magnitude_sq,
        a_col[:, 0],
        b_col[:, 0],
        a_sq[:, 0],
        b_sq[:, 0],
        two_ab[:, 0],
    )
    # One vectorized arctan2 pass, shared with the numpy backend, so the
    # two backends cannot diverge on angle rounding.
    return BatchPhaseSolutions(
        theta1=np.angle(p_theta1),
        phi1=np.angle(p_phi1),
        theta2=np.angle(p_theta2),
        phi2=np.angle(p_phi2),
        cosine=cosine,
    )


def _jit_match_phase_differences(solutions, known_differences) -> BatchMatchResult:
    """Numba-accelerated :func:`repro.anc.batch.batch_match_phase_differences`."""
    known = np.ascontiguousarray(np.asarray(known_differences, dtype=float))
    n_samples = solutions.n_samples
    if n_samples < 2:
        raise DecodingError("at least two samples are required to form phase differences")
    n_intervals = n_samples - 1
    if known.shape != (solutions.n_trials, n_intervals):
        raise DecodingError(
            f"known_differences has shape {known.shape} but the batch has "
            f"{solutions.n_trials} trials of {n_intervals} sample intervals"
        )
    known_wrapped = known.size == 0 or float(np.max(np.abs(known))) <= np.pi
    if not known_wrapped:
        # Out-of-range known differences need the reference wrap; this
        # path is cold (the decoder always passes +/- pi/2), so defer to
        # the numpy kernel rather than duplicating wrap_angle in JIT.
        return batch_match_phase_differences(solutions, known)
    kernels = _JIT_KERNELS
    assert kernels is not None
    selected_phi, selected_theta, selected_errors, bits = kernels["match"](
        np.ascontiguousarray(solutions.theta1),
        np.ascontiguousarray(solutions.theta2),
        np.ascontiguousarray(solutions.phi1),
        np.ascontiguousarray(solutions.phi2),
        known,
    )
    return BatchMatchResult(
        unknown_differences=selected_phi,
        known_differences_selected=selected_theta,
        match_errors=selected_errors,
        bits=bits,
    )


def make_numba_backend() -> Backend:
    """Build the numba backend, or its warned numpy fallback.

    The fallback object keeps the registry name ``"numba"`` (so configs
    naming it still resolve) but records ``fallback_of="numpy"`` and
    runs the reference kernels — results are identical either way, which
    is what lets the backend stay digest-neutral across environments.
    """
    numba = _import_numba()
    if numba is None:
        _warn_fallback_once()
        return Backend(
            name="numba",
            description="numba JIT decode kernels (currently degraded to numpy: "
            "numba is not installed)",
            digest_neutral=True,
            phase_solutions=batch_phase_solutions,
            match_phase_differences=batch_match_phase_differences,
            differential_bits=batch_differential_bits,
            modulate_waveform=modulate_waveform,
            demodulate_phase_differences=demodulate_phase_differences,
            fallback_of="numpy",
        )
    global _JIT_KERNELS
    if _JIT_KERNELS is None:
        _JIT_KERNELS = _build_jit_kernels(numba)
    return Backend(
        name="numba",
        description="numba JIT-compiled decode kernels (bit-identical decode "
        "output; modem kernels stay numpy)",
        digest_neutral=True,
        phase_solutions=_jit_phase_solutions,
        match_phase_differences=_jit_match_phase_differences,
        differential_bits=batch_differential_bits,
        modulate_waveform=modulate_waveform,
        demodulate_phase_differences=demodulate_phase_differences,
        meta={"jit": True},
    )
