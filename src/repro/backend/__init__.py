"""Pluggable compute backends for the batched PHY kernels.

The batched PHY (:mod:`repro.anc.batch`, :mod:`repro.modulation.batch`)
is a set of clean 2D array programs over ``(n_trials, n_samples)``
blocks.  This package makes the *implementation* of those kernels
pluggable without ever touching their contract:

``numpy``
    The default.  Exactly the kernels the library has always run —
    **bit-identical** to the scalar reference path (the differential
    suite's strongest claim).
``numba``
    Optional JIT-compiled decode kernels.  When :mod:`numba` is not
    installed the backend degrades to the numpy kernels with a one-time
    :class:`~repro.backend.numba_backend.NumbaFallbackWarning` —
    importing this package never imports numba, so the default
    environment stays dependency-free.
``float32-fast``
    Reduced-precision (complex64/float32) kernels.  Faster on
    bandwidth-bound batches, but **not** bit-identical: the backend
    carries explicit accuracy-gate metadata (maximum BER deviation vs
    the ``numpy`` backend, asserted by ``tests/backend``) and
    :func:`get_backend` *refuses* to hand it out if that metadata is
    missing — reduced precision without a measured bound is a bug, not
    a feature.

Digest neutrality
-----------------
A backend that the differential suite proves equivalent to the scalar
reference (``numpy``, ``numba``) is **digest-neutral**: like
``batch_size``, it is an execution knob that cannot change results, so
:meth:`~repro.experiments.engine.ExperimentEngine.task_digest` keeps it
out of the cache digest and caches survive switching it.
``float32-fast`` is *not* digest-neutral — its results live inside an
accuracy gate, not on it — so it forks the digest.

Selection
---------
Backends resolve in three ways, most specific first:

1. explicitly, per object: ``InterferenceDecoder(backend="numba")``;
2. ambiently, per scope: ``with use_backend("numba"): ...`` (the
   experiment engine wraps every trial block in the config's backend);
3. the process default, ``numpy``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from repro.exceptions import BackendError

__all__ = [
    "Backend",
    "DEFAULT_BACKEND",
    "active_backend_name",
    "available_backends",
    "get_backend",
    "is_digest_neutral",
    "register_backend",
    "resolve_backend",
    "use_backend",
]

#: The always-available reference backend every installation has.
DEFAULT_BACKEND = "numpy"


@dataclass(frozen=True)
class Backend:
    """One pluggable implementation of the batched PHY kernels.

    Attributes
    ----------
    name:
        Registry name (``"numpy"``, ``"numba"``, ``"float32-fast"``).
    description:
        One-line human description (shown in CLI help and docs).
    digest_neutral:
        ``True`` when the differential suite certifies this backend's
        decode output equal to the scalar reference, which licenses the
        engine to keep it out of cache digests (see the module
        docstring).
    accuracy_gate:
        ``None`` for exact backends.  Non-exact backends **must** carry
        a mapping with at least ``max_ber_deviation`` (the asserted
        maximum BER deviation vs the ``numpy`` backend) and
        ``reference`` — :func:`get_backend` refuses a non-neutral
        backend whose gate metadata is missing or incomplete.
    fallback_of:
        Set when this backend object is a degraded stand-in (e.g. the
        ``numba`` entry running numpy kernels because numba is absent);
        names the backend whose kernels actually run.
    phase_solutions:
        Batched Lemma 6.1 kernel — signature of
        :func:`repro.anc.batch.batch_phase_solutions`.
    match_phase_differences:
        Batched Eq. 7-8 matching kernel — signature of
        :func:`repro.anc.batch.batch_match_phase_differences`.
    differential_bits:
        Clean-interval differential slicing kernel — signature of
        :func:`repro.anc.batch.batch_differential_bits`.
    modulate_waveform:
        ``(phases, amplitude) -> samples``: turn per-sample phases into
        the complex MSK waveform batch.
    demodulate_phase_differences:
        ``(samples) -> angles``: wrapped phase differences of every row
        (the Eq. 1 conjugate-product demodulator, after symbol
        striding).
    """

    name: str
    description: str
    digest_neutral: bool
    phase_solutions: Callable[..., Any]
    match_phase_differences: Callable[..., Any]
    differential_bits: Callable[[np.ndarray], np.ndarray]
    modulate_waveform: Callable[[np.ndarray, float], np.ndarray]
    demodulate_phase_differences: Callable[[np.ndarray], np.ndarray]
    accuracy_gate: Optional[Mapping[str, Any]] = None
    fallback_of: Optional[str] = None
    meta: Mapping[str, Any] = field(default_factory=dict)


#: Lazily-built registry: name -> factory producing the Backend once.
_FACTORIES: Dict[str, Callable[[], Backend]] = {}

#: Materialized backends (built on first :func:`get_backend`).
_BACKENDS: Dict[str, Backend] = {}

#: Per-thread ambient backend stack (:func:`use_backend`).
_ACTIVE = threading.local()

_REGISTRY_LOCK = threading.Lock()


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name``.

    The factory runs at most once, on the first :func:`get_backend`
    call — which is what keeps optional dependencies (numba) out of the
    import path of this package.
    """
    with _REGISTRY_LOCK:
        if name in _FACTORIES:
            raise BackendError(f"backend {name!r} is already registered")
        _FACTORIES[name] = factory


def available_backends() -> List[str]:
    """Names of every registered backend (no optional imports happen)."""
    return sorted(_FACTORIES)


def _validate(backend: Backend) -> Backend:
    """Refuse misdeclared backends before they reach any caller.

    The accuracy-gate rule: a backend that is not digest-neutral is by
    definition allowed to deviate from the reference, and such deviation
    is only acceptable under an explicit, tested bound.  No metadata, no
    backend.
    """
    if not backend.digest_neutral:
        gate = backend.accuracy_gate
        if not isinstance(gate, Mapping) or "max_ber_deviation" not in gate:
            raise BackendError(
                f"backend {backend.name!r} is not digest-neutral but carries no "
                "accuracy-gate metadata (a 'max_ber_deviation' bound vs the "
                "reference); refusing to run unbounded reduced-precision kernels"
            )
        if not 0.0 <= float(gate["max_ber_deviation"]) < 1.0:
            raise BackendError(
                f"backend {backend.name!r} declares an invalid "
                f"max_ber_deviation of {gate['max_ber_deviation']!r}"
            )
    return backend


def get_backend(name: Optional[str] = None) -> Backend:
    """Resolve a backend by name (``None`` means the ambient/default one).

    Raises
    ------
    BackendError
        For unknown names, or for a non-exact backend whose accuracy-gate
        metadata is missing (see :func:`_validate`).
    """
    if name is None:
        name = active_backend_name()
    if name not in _FACTORIES:
        raise BackendError(
            f"unknown compute backend {name!r}; choose from {', '.join(available_backends())}"
        )
    with _REGISTRY_LOCK:
        backend = _BACKENDS.get(name)
        if backend is None:
            backend = _FACTORIES[name]()
            _BACKENDS[name] = backend
    return _validate(backend)


def resolve_backend(backend: Union[None, str, Backend]) -> Backend:
    """Accept ``None`` (ambient), a name, or an already-resolved Backend."""
    if isinstance(backend, Backend):
        return _validate(backend)
    return get_backend(backend)


def is_digest_neutral(name: str) -> bool:
    """Whether the named backend may be omitted from cache digests."""
    return get_backend(name).digest_neutral


def active_backend_name() -> str:
    """The name :func:`get_backend` resolves ``None`` to in this thread."""
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else DEFAULT_BACKEND


@contextmanager
def use_backend(name: str) -> Iterator[Backend]:
    """Make ``name`` the ambient backend for the ``with`` scope.

    The experiment engine wraps every trial block in the config's
    backend through this, so worker processes resolve the same kernels
    the driving process would.  Nesting is allowed; scopes restore on
    exit even when the body raises.
    """
    backend = get_backend(name)  # validate before entering the scope
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    stack.append(backend.name)
    try:
        yield backend
    finally:
        stack.pop()


def _register_builtin_backends() -> None:
    """Register the three built-in factories (imports stay lazy inside)."""

    def _numpy_factory() -> Backend:
        from repro.backend.numpy_backend import make_numpy_backend

        return make_numpy_backend()

    def _numba_factory() -> Backend:
        from repro.backend.numba_backend import make_numba_backend

        return make_numba_backend()

    def _float32_factory() -> Backend:
        from repro.backend.float32_fast import make_float32_fast_backend

        return make_float32_fast_backend()

    register_backend("numpy", _numpy_factory)
    register_backend("numba", _numba_factory)
    register_backend("float32-fast", _float32_factory)


_register_builtin_backends()
