"""The ``numpy`` compute backend — the bit-exact reference kernels.

This backend is a thin adapter: every kernel *is* the library's existing
vectorized implementation (:mod:`repro.anc.batch`,
:mod:`repro.modulation.batch` idioms), which the differential suite
certifies bit-identical to the scalar reference path.  It exists so the
registry has a concrete default and so the other backends have a
reference to be measured against.
"""

from __future__ import annotations

import numpy as np

from repro.anc.batch import (
    batch_differential_bits,
    batch_match_phase_differences,
    batch_phase_solutions,
)
from repro.backend import Backend


def modulate_waveform(phases: np.ndarray, amplitude: float) -> np.ndarray:
    """Complex MSK waveform batch from per-sample phases.

    The exact expression the scalar modulator evaluates
    (``amplitude * exp(1j * phases)``) applied to the whole 2D phase
    array — elementwise, hence bit-identical per row.
    """
    return amplitude * np.exp(1j * phases)


def demodulate_phase_differences(samples: np.ndarray) -> np.ndarray:
    """Eq. 1 wrapped phase differences of every row (post symbol-striding)."""
    if samples.shape[1] < 2:
        return np.zeros((samples.shape[0], 0), dtype=float)
    ratio = samples[:, 1:] * np.conj(samples[:, :-1])
    return np.angle(ratio)


def make_numpy_backend() -> Backend:
    """Build the default backend from the reference batch kernels."""
    return Backend(
        name="numpy",
        description="reference numpy kernels (bit-identical to the scalar path)",
        digest_neutral=True,
        phase_solutions=batch_phase_solutions,
        match_phase_differences=batch_match_phase_differences,
        differential_bits=batch_differential_bits,
        modulate_waveform=modulate_waveform,
        demodulate_phase_differences=demodulate_phase_differences,
    )
