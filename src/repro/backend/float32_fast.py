"""The ``float32-fast`` compute backend — reduced-precision PHY kernels.

Every kernel mirrors the reference implementation structurally but runs
in ``complex64``/``float32``.  Halving the element width halves memory
traffic, which is where large ``(n_trials, n_samples)`` batches spend
their time, at the cost of ~7 decimal digits of precision — enough to
move decoded bits on samples that sit close to a decision boundary.

Because the output is *not* bit-identical to the scalar reference, this
backend is **not digest-neutral** (selecting it forks the experiment
cache digest) and it must carry accuracy-gate metadata: the registry
refuses to hand out a reduced-precision backend without a declared,
tested ``max_ber_deviation`` bound (see
:func:`repro.backend.get_backend`).  The bound itself is asserted
against the ``numpy`` backend on a synthetic collision ensemble by
``tests/backend/test_backend.py`` and on hypothesis-generated collisions
by ``tests/properties/test_batch_equivalence.py``.

Containers stay ``complex128``: :class:`~repro.signal.SignalBatch` keeps
its dtype contract, and kernels cast on entry.  The cast is a copy, so
the win is in the kernel arithmetic and intermediates, not end-to-end
storage.
"""

from __future__ import annotations

import numpy as np

from repro.anc.batch import (
    BatchMatchResult,
    BatchPhaseSolutions,
    _amplitude_products,
)
from repro.backend import Backend
from repro.exceptions import DecodingError

#: float32 twins of the wrap constants in :mod:`repro.anc.batch`.
_PI_32 = np.float32(np.pi)
_TWO_PI_32 = np.float32(2.0 * np.pi)
_MINUS_PI_TOLERANCE_32 = np.float32(1e-8 + 1e-5 * np.pi)
_J_32 = np.complex64(1j)

#: Declared accuracy gate, asserted by the backend test-suite: decoded
#: bits may differ from the ``numpy`` reference on at most this fraction
#: of bits over the certification ensembles.  Measured headroom is large
#: (observed deviation is typically < 1e-3, concentrated on samples that
#: land within float32 epsilon of the Eq. 8 decision boundary).
MAX_BER_DEVIATION = 5e-3

ACCURACY_GATE = {
    "reference": "numpy",
    "max_ber_deviation": MAX_BER_DEVIATION,
    "certified_by": [
        "tests/backend/test_backend.py",
        "tests/properties/test_batch_equivalence.py",
    ],
}


def _wrap_angle_fast_32(angle: np.ndarray) -> np.ndarray:
    """float32 twin of :func:`repro.anc.batch._wrap_angle_fast`.

    Same precondition (inputs in ``(-2*pi, 2*pi]``) and the same
    conditional ``+/- 2*pi`` reduction, evaluated in float32.
    """
    wrapped = angle + _PI_32
    negative = wrapped < 0
    overflow = wrapped >= _TWO_PI_32
    np.add(wrapped, _TWO_PI_32, out=wrapped, where=negative)
    np.subtract(wrapped, _TWO_PI_32, out=wrapped, where=overflow)
    wrapped -= _PI_32
    np.copyto(wrapped, _PI_32, where=np.abs(wrapped + _PI_32) <= _MINUS_PI_TOLERANCE_32)
    return wrapped


def phase_solutions(samples, amplitudes_a, amplitudes_b) -> BatchPhaseSolutions:
    """float32 Lemma 6.1 kernel (API of ``batch_phase_solutions``)."""
    a64, b64, a_sq64, b_sq64, two_ab64 = _amplitude_products(amplitudes_a, amplitudes_b)
    a = a64.astype(np.float32)
    b = b64.astype(np.float32)
    a_sq = a_sq64.astype(np.float32)
    b_sq = b_sq64.astype(np.float32)
    two_ab = two_ab64.astype(np.float32)
    y = np.ascontiguousarray(np.asarray(samples), dtype=np.complex64)
    if y.shape[1] == 0:
        empty = np.zeros(y.shape, dtype=np.float32)
        return BatchPhaseSolutions(empty, empty, empty, empty, empty)
    magnitude_sq = np.abs(y) ** 2
    cosine = np.clip((magnitude_sq - a_sq - b_sq) / two_ab, np.float32(-1.0), np.float32(1.0))
    sine = np.sqrt(np.maximum(np.float32(1.0) - cosine ** 2, np.float32(0.0)))
    theta1 = np.angle(y * (a + b * cosine - _J_32 * b * sine))
    phi1 = np.angle(y * (b + a * cosine + _J_32 * a * sine))
    theta2 = np.angle(y * (a + b * cosine + _J_32 * b * sine))
    phi2 = np.angle(y * (b + a * cosine - _J_32 * a * sine))
    return BatchPhaseSolutions(theta1=theta1, phi1=phi1, theta2=theta2, phi2=phi2, cosine=cosine)


def match_phase_differences(solutions, known_differences) -> BatchMatchResult:
    """float32 Eq. 7-8 matching kernel (API of ``batch_match_phase_differences``)."""
    known = np.asarray(known_differences, dtype=np.float32)
    n_samples = solutions.n_samples
    if n_samples < 2:
        raise DecodingError("at least two samples are required to form phase differences")
    n_intervals = n_samples - 1
    if known.shape != (solutions.n_trials, n_intervals):
        raise DecodingError(
            f"known_differences has shape {known.shape} but the batch has "
            f"{solutions.n_trials} trials of {n_intervals} sample intervals"
        )

    theta = np.stack([solutions.theta1, solutions.theta2]).astype(np.float32, copy=False)
    phi = np.stack([solutions.phi1, solutions.phi2]).astype(np.float32, copy=False)

    delta_theta = _wrap_angle_fast_32(theta[:, None, :, 1:] - theta[None, :, :, :-1])
    raw_delta_phi = phi[:, None, :, 1:] - phi[None, :, :, :-1]

    raw_errors = delta_theta - known[None, None, :, :]
    known_wrapped = known.size == 0 or float(np.max(np.abs(known))) <= float(_PI_32)
    if not known_wrapped:
        # Fold out-of-range targets into the fast wrap's domain first;
        # the decoder never takes this branch (its targets are +/- pi/2).
        raw_errors = np.remainder(raw_errors + _PI_32, _TWO_PI_32) - _PI_32
    errors = np.abs(_wrap_angle_fast_32(raw_errors))
    flat_errors = errors.reshape(4, solutions.n_trials, n_intervals)
    best = np.argmin(flat_errors, axis=0)

    flat_delta_phi = raw_delta_phi.reshape(4, solutions.n_trials, n_intervals)
    flat_delta_theta = delta_theta.reshape(4, solutions.n_trials, n_intervals)
    selector = best[None, :, :]
    selected_phi = _wrap_angle_fast_32(np.take_along_axis(flat_delta_phi, selector, axis=0)[0])
    selected_theta = np.take_along_axis(flat_delta_theta, selector, axis=0)[0]
    selected_errors = np.take_along_axis(flat_errors, selector, axis=0)[0]

    bits = (selected_phi >= 0).astype(np.uint8)
    return BatchMatchResult(
        unknown_differences=selected_phi,
        known_differences_selected=selected_theta,
        match_errors=selected_errors,
        bits=bits,
    )


def differential_bits(blocks: np.ndarray) -> np.ndarray:
    """float32 clean-interval differential slicer (API of ``batch_differential_bits``)."""
    y = np.asarray(blocks, dtype=np.complex64)
    ratio = y[:, 1:] * np.conj(y[:, :-1])
    return (np.angle(ratio) >= 0).astype(np.uint8)


def modulate_waveform(phases: np.ndarray, amplitude: float) -> np.ndarray:
    """float32 MSK waveform synthesis (complex64 output)."""
    return np.complex64(amplitude) * np.exp(_J_32 * np.asarray(phases, dtype=np.float32))


def demodulate_phase_differences(samples: np.ndarray) -> np.ndarray:
    """float32 Eq. 1 conjugate-product demodulator (float32 angles)."""
    y = np.asarray(samples, dtype=np.complex64)
    if y.shape[1] < 2:
        return np.zeros((y.shape[0], 0), dtype=np.float32)
    ratio = y[:, 1:] * np.conj(y[:, :-1])
    return np.angle(ratio)


def make_float32_fast_backend() -> Backend:
    """Build the reduced-precision backend with its accuracy gate attached."""
    return Backend(
        name="float32-fast",
        description="reduced-precision complex64/float32 kernels "
        f"(accuracy-gated: BER deviation <= {MAX_BER_DEVIATION:g} vs numpy)",
        digest_neutral=False,
        phase_solutions=phase_solutions,
        match_phase_differences=match_phase_differences,
        differential_bits=differential_bits,
        modulate_waveform=modulate_waveform,
        demodulate_phase_differences=demodulate_phase_differences,
        accuracy_gate=ACCURACY_GATE,
    )
