"""Resolving the per-sample phase ambiguity with the known signal (§6.3).

Lemma 6.1 yields *two* candidate phase pairs per sample, so across two
consecutive samples there are four candidate phase-difference pairs
(Eq. 7).  The receiver knows the phase differences of its own (or
overheard) signal, ``delta theta_s[n]``, and those survive the channel
unchanged because the constant phase offset ``gamma`` cancels in the
difference.  For each sample interval the matcher therefore picks the
candidate whose ``delta theta`` is closest to the known value (Eq. 8) and
outputs the paired ``delta phi`` — the unknown signal's phase difference —
from which the unknown bit is sliced (§6.4: ``delta phi >= 0`` means "1").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.anc.lemma import PhaseSolutions
from repro.exceptions import DecodingError
from repro.utils.angles import wrap_angle


@dataclass(frozen=True)
class MatchResult:
    """Output of the phase-difference matching step.

    Attributes
    ----------
    unknown_differences:
        The selected ``delta phi`` for every sample interval; slicing these
        at zero yields the unknown signal's bits.
    known_differences_selected:
        The ``delta theta`` of the winning candidate at every interval
        (diagnostic: how close the match was to the known sequence).
    match_errors:
        The Eq. 8 error of the winning candidate at every interval; large
        values flag intervals where even the best candidate disagreed with
        the known signal, i.e. likely bit errors.
    bits:
        Hard decisions on ``unknown_differences``.
    """

    unknown_differences: np.ndarray
    known_differences_selected: np.ndarray
    match_errors: np.ndarray
    bits: np.ndarray

    def __len__(self) -> int:
        return int(self.bits.size)


def match_phase_differences(
    solutions: PhaseSolutions,
    known_differences: np.ndarray,
) -> MatchResult:
    """Pick the most plausible phase-difference pair for every sample interval.

    Parameters
    ----------
    solutions:
        The per-sample candidate phases from :func:`repro.anc.lemma.phase_solutions`
        for ``N + 1`` consecutive samples.
    known_differences:
        The known signal's phase differences for those ``N`` intervals
        (``delta theta_s``), e.g. ±pi/2 values regenerated from the bits of
        the packet the receiver previously sent or overheard.

    Returns
    -------
    MatchResult
        Selected unknown phase differences, diagnostics and hard bits.
    """
    known = np.asarray(known_differences, dtype=float)
    n_samples = len(solutions)
    if n_samples < 2:
        raise DecodingError("at least two samples are required to form phase differences")
    n_intervals = n_samples - 1
    if known.size != n_intervals:
        raise DecodingError(
            f"known_differences has {known.size} entries but the block has "
            f"{n_intervals} sample intervals"
        )

    theta = np.stack([solutions.theta1, solutions.theta2])  # shape (2, N+1)
    phi = np.stack([solutions.phi1, solutions.phi2])

    # Candidate differences for every (x, y) branch combination:
    #   delta_theta[x, y, n] = theta_x[n + 1] - theta_y[n]
    delta_theta = wrap_angle(theta[:, None, 1:] - theta[None, :, :-1])  # (2, 2, N)
    delta_phi = wrap_angle(phi[:, None, 1:] - phi[None, :, :-1])

    errors = np.abs(wrap_angle(delta_theta - known[None, None, :]))  # (2, 2, N)
    flat_errors = errors.reshape(4, n_intervals)
    best = np.argmin(flat_errors, axis=0)

    flat_delta_phi = delta_phi.reshape(4, n_intervals)
    flat_delta_theta = delta_theta.reshape(4, n_intervals)
    columns = np.arange(n_intervals)
    selected_phi = flat_delta_phi[best, columns]
    selected_theta = flat_delta_theta[best, columns]
    selected_errors = flat_errors[best, columns]

    bits = (selected_phi >= 0).astype(np.uint8)
    return MatchResult(
        unknown_differences=selected_phi,
        known_differences_selected=selected_theta,
        match_errors=selected_errors,
        bits=bits,
    )
