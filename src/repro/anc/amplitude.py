"""Estimating the component amplitudes A and B of an interfered signal.

Section 6.2 of the paper: the receiver needs the two received amplitudes to
apply Lemma 6.1.  It estimates them from two energy statistics of the
interfered block:

* the mean energy ``mu = E[|y|^2] = A^2 + B^2`` (Eq. 5), because the cross
  term averages to zero for whitened (random) bit patterns, and
* ``sigma = (2/N) * sum_{|y|^2 > mu} |y|^2 = A^2 + B^2 + 4AB/pi`` (Eq. 6),
  the average energy of the samples that beat constructively.

Solving the two equations gives ``A`` and ``B`` up to the obvious
labelling ambiguity (which one is the known signal's amplitude); the
``estimate_amplitudes_with_known`` variant resolves the labelling with an
independent estimate of the known signal's amplitude, e.g. measured from
the interference-free head of the packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.exceptions import DecodingError
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_complex_array

SignalLike = Union[ComplexSignal, np.ndarray]


def _as_samples(signal: SignalLike) -> np.ndarray:
    if isinstance(signal, ComplexSignal):
        return signal.samples
    return ensure_complex_array(signal, "samples")


def mean_energy(samples: SignalLike) -> float:
    """The statistic ``mu`` of Eq. 5: the average per-sample energy."""
    y = _as_samples(samples)
    if y.size == 0:
        raise DecodingError("cannot estimate amplitudes from an empty block")
    return float(np.mean(np.abs(y) ** 2))


def sigma_statistic(samples: SignalLike, mu: Optional[float] = None) -> float:
    """The statistic ``sigma`` of Eq. 6.

    ``sigma`` is defined as ``(2/N) * sum`` of the sample energies that
    exceed the mean energy ``mu``; for a random relative phase this equals
    the conditional mean ``A^2 + B^2 + 4AB/pi`` because roughly half the
    samples land above the mean.
    """
    y = _as_samples(samples)
    if y.size == 0:
        raise DecodingError("cannot estimate amplitudes from an empty block")
    energy = np.abs(y) ** 2
    mean = mean_energy(y) if mu is None else float(mu)
    above = energy[energy > mean]
    if above.size == 0:
        # Degenerate case: perfectly constant energy (no interference beat).
        return mean
    return float(2.0 * np.sum(above) / energy.size)


@dataclass(frozen=True)
class AmplitudeEstimate:
    """Result of the A/B amplitude estimation.

    Attributes
    ----------
    amplitude_a:
        Estimated amplitude of the *known* signal (labelled A, as in the
        paper where Alice's own signal is the A component).
    amplitude_b:
        Estimated amplitude of the *unknown* signal.
    mu:
        The Eq. 5 statistic used for the estimate.
    sigma:
        The Eq. 6 statistic used for the estimate.
    """

    amplitude_a: float
    amplitude_b: float
    mu: float
    sigma: float

    @property
    def sum_power(self) -> float:
        """``A^2 + B^2`` implied by the estimate."""
        return self.amplitude_a ** 2 + self.amplitude_b ** 2

    @property
    def sir_db(self) -> float:
        """Signal-to-interference ratio (unknown over known), Eq. 9."""
        if self.amplitude_a <= 0 or self.amplitude_b <= 0:
            raise DecodingError("SIR undefined for non-positive amplitude estimates")
        return float(20.0 * np.log10(self.amplitude_b / self.amplitude_a))


def _solve_from_statistics(mu: float, sigma: float) -> Tuple[float, float]:
    """Solve Eqs. 5-6 for the (unordered) amplitude pair."""
    if mu <= 0:
        raise DecodingError("mean energy must be positive to estimate amplitudes")
    product = np.pi * max(sigma - mu, 0.0) / 4.0  # A * B
    # A^2 and B^2 are the roots of t^2 - mu * t + product^2 = 0.
    discriminant = mu ** 2 - 4.0 * product ** 2
    if discriminant < 0:
        # Noise pushed sigma beyond the feasible region (A = B case); the
        # best feasible answer is two equal amplitudes.
        equal = float(np.sqrt(mu / 2.0))
        return equal, equal
    root = np.sqrt(discriminant)
    larger_sq = (mu + root) / 2.0
    smaller_sq = (mu - root) / 2.0
    return float(np.sqrt(max(larger_sq, 0.0))), float(np.sqrt(max(smaller_sq, 0.0)))


def estimate_amplitudes(samples: SignalLike) -> Tuple[float, float]:
    """Estimate the two component amplitudes of an interfered block.

    Returns the unordered pair ``(larger, smaller)``.  Use
    :func:`estimate_amplitudes_with_known` when an independent estimate of
    the known signal's amplitude is available to resolve which is which.
    """
    y = _as_samples(samples)
    mu = mean_energy(y)
    sigma = sigma_statistic(y, mu)
    return _solve_from_statistics(mu, sigma)


def estimate_amplitudes_with_known(
    samples: SignalLike,
    known_amplitude_hint: float,
) -> AmplitudeEstimate:
    """Estimate A and B, assigning the label A to the known signal.

    Parameters
    ----------
    samples:
        The interfered (overlap-region) samples.
    known_amplitude_hint:
        An independent estimate of the known signal's received amplitude —
        in the receive pipeline this is the mean magnitude of the
        interference-free head (or tail) where only the known signal is
        present.  The hint only resolves the labelling ambiguity; the
        amplitudes themselves come from the Eq. 5-6 statistics.
    """
    if known_amplitude_hint <= 0:
        raise DecodingError("known amplitude hint must be positive")
    y = _as_samples(samples)
    mu = mean_energy(y)
    sigma = sigma_statistic(y, mu)
    larger, smaller = _solve_from_statistics(mu, sigma)
    if abs(larger - known_amplitude_hint) <= abs(smaller - known_amplitude_hint):
        amplitude_a, amplitude_b = larger, smaller
    else:
        amplitude_a, amplitude_b = smaller, larger
    return AmplitudeEstimate(
        amplitude_a=amplitude_a,
        amplitude_b=amplitude_b,
        mu=mu,
        sigma=sigma,
    )
