"""The complete ANC receive chain (Fig. 8 / Algorithm 1).

``ReceivePipeline.receive`` takes the raw received waveform and a buffer of
frames the node already knows (its own earlier transmissions and anything
it overheard) and produces a :class:`ReceiveResult`:

1. the energy detector decides whether a packet is present at all;
2. the variance detector classifies it as clean or interfered (§7.1);
3. a clean packet is demodulated with standard MSK, aligned on its pilot
   and deframed;
4. an interfered packet is processed by decoding the leading header out of
   the interference-free head and the trailing header out of the
   interference-free tail (§7.2-§7.4), looking the headers up in the
   known-frame buffer, and running the interference decoder forwards or
   backwards depending on which of the two colliding frames is known;
5. if neither header names a known frame the pipeline reports
   ``NEEDS_RELAY`` so a router can decide to amplify-and-forward instead
   (§7.5).

The pipeline assumes all frames in the network carry payloads of a fixed,
configured size (``expected_payload_bits``) — the usual fixed-MTU
assumption, which is also how the paper's testbed operates (1000 fixed-size
packets per run).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.anc.alignment import align_known_frame
from repro.anc.decoder import DecodeDiagnostics, DecoderConfig, InterferenceDecoder
from repro.exceptions import (
    DecodingError,
    HeaderError,
    SynchronizationError,
)
from repro.framing.buffer import SentPacketBuffer
from repro.framing.frame import Deframer, Framer
from repro.framing.header import Header
from repro.framing.packet import Packet
from repro.framing.pilot import PilotSequence, find_all_pilots, find_pilot
from repro.modulation.msk import MSKDemodulator
from repro.signal.energy import EnergyDetector, InterferenceDetector
from repro.signal.samples import ComplexSignal


class ReceiveOutcome(enum.Enum):
    """What the receive pipeline concluded about a waveform."""

    NO_SIGNAL = "no_signal"
    CLEAN_DECODED = "clean_decoded"
    ANC_DECODED = "anc_decoded"
    NEEDS_RELAY = "needs_relay"
    FAILED = "failed"


@dataclass
class ReceiveResult:
    """Everything the pipeline learned from one received waveform."""

    outcome: ReceiveOutcome
    packet: Optional[Packet] = None
    crc_ok: bool = False
    interfered: bool = False
    first_header: Optional[Header] = None
    second_header: Optional[Header] = None
    decoded_bits: Optional[np.ndarray] = None
    diagnostics: Optional[DecodeDiagnostics] = None
    failure_reason: str = ""

    @property
    def delivered(self) -> bool:
        """True when a packet was decoded and passed its payload CRC."""
        return self.packet is not None and self.crc_ok


class ReceivePipeline:
    """Algorithm 1 of the paper, parameterised by the node's configuration.

    Parameters
    ----------
    noise_power:
        The receiver's noise floor, used by the energy and variance
        detectors.
    expected_payload_bits:
        Fixed payload size used throughout the network; determines the
        frame length the parser expects.
    known_frames:
        Buffer of frames this node can use to cancel interference (its own
        sent frames plus overheard ones).  May be shared with the node's
        transmit path.
    decoder_config:
        Tuning knobs for the interference decoder.
    pilot, framer, deframer:
        Protocol objects; defaults build the standard ones.
    packet_threshold_db, interference_threshold_db:
        Detector thresholds relative to the noise floor.  The paper quotes
        20 dB for both (§7.1) under 25-40 dB operating SNR; the defaults
        here are lower so the same pipeline also detects reliably at the
        ~20 dB low end of the simulated operating range — the relative
        ordering (interference threshold above the clean-signal energy
        variance, far below collision variance) is what matters.
    """

    def __init__(
        self,
        noise_power: float,
        expected_payload_bits: int,
        known_frames: Optional[SentPacketBuffer] = None,
        decoder_config: Optional[DecoderConfig] = None,
        pilot: Optional[PilotSequence] = None,
        framer: Optional[Framer] = None,
        deframer: Optional[Deframer] = None,
        packet_threshold_db: float = 12.0,
        interference_threshold_db: float = 14.0,
        detector_window: int = 16,
    ) -> None:
        self.noise_power = float(noise_power)
        self.expected_payload_bits = int(expected_payload_bits)
        self.known_frames = known_frames if known_frames is not None else SentPacketBuffer()
        self.pilot = pilot if pilot is not None else PilotSequence()
        self.framer = framer if framer is not None else Framer(pilot=self.pilot)
        self.deframer = deframer if deframer is not None else Deframer(pilot=self.pilot)
        self.decoder = InterferenceDecoder(decoder_config)
        self.energy_detector = EnergyDetector(
            noise_power=self.noise_power,
            threshold_db=packet_threshold_db,
            window=detector_window,
        )
        self.interference_detector = InterferenceDetector(
            noise_power=self.noise_power,
            threshold_db=interference_threshold_db,
            window=detector_window,
        )
        self._demodulator = MSKDemodulator(samples_per_symbol=1)

    # ------------------------------------------------------------------
    # Frame geometry helpers
    # ------------------------------------------------------------------
    @property
    def frame_bits(self) -> int:
        """Number of bits in every frame of this network."""
        return self.framer.frame_length(self.expected_payload_bits)

    @property
    def frame_samples(self) -> int:
        """Number of complex samples each transmitted frame occupies."""
        return self.frame_bits + 1

    @property
    def _header_region_bits(self) -> int:
        return self.pilot.length + Header.ENCODED_LENGTH

    # ------------------------------------------------------------------
    # Public entry point (Algorithm 1)
    # ------------------------------------------------------------------
    def receive(self, waveform: ComplexSignal) -> ReceiveResult:
        """Run the full receive chain on a raw waveform."""
        if len(waveform) == 0:
            return ReceiveResult(outcome=ReceiveOutcome.NO_SIGNAL, failure_reason="empty waveform")
        detection = self.energy_detector.detect(waveform)
        if not detection.detected:
            return ReceiveResult(outcome=ReceiveOutcome.NO_SIGNAL, failure_reason="no energy")
        region = waveform.slice(detection.start_index, detection.end_index)
        interfered = self._classify_interference(region)
        if not interfered:
            return self._receive_clean(region)
        return self._receive_interfered(region)

    def _classify_interference(self, region: ComplexSignal) -> bool:
        """Run the variance detector on the interior of the detected region.

        The first and last detector windows are excluded so that the
        energy ramp at the packet edges (silence -> signal) is not mistaken
        for a collision; only genuine superposition inside the packet
        raises the interior energy variance.
        """
        window = self.interference_detector.window
        if len(region) > 4 * window:
            interior = region.slice(window, len(region) - window)
        else:
            interior = region
        return self.interference_detector.detect(interior)

    # ------------------------------------------------------------------
    # Clean (non-interfered) path
    # ------------------------------------------------------------------
    def _receive_clean(self, region: ComplexSignal) -> ReceiveResult:
        candidates = self._clean_frame_candidates(region)
        if not candidates:
            return ReceiveResult(
                outcome=ReceiveOutcome.FAILED,
                interfered=False,
                failure_reason="pilot sequence not found",
            )
        fallback: Optional[ReceiveResult] = None
        for start in candidates:
            end = start + self.frame_samples
            if end > len(region):
                continue
            bits = self._demodulator.demodulate(region.slice(start, end))
            parsed = self.deframer.parse(bits)
            if parsed.packet is None:
                if fallback is None:
                    fallback = ReceiveResult(
                        outcome=ReceiveOutcome.FAILED,
                        interfered=False,
                        decoded_bits=bits,
                        failure_reason="header did not validate",
                    )
                continue
            result = ReceiveResult(
                outcome=ReceiveOutcome.CLEAN_DECODED,
                packet=parsed.packet,
                crc_ok=parsed.payload_crc_ok,
                interfered=False,
                first_header=parsed.header,
                decoded_bits=bits,
            )
            if parsed.payload_crc_ok:
                return result
            if fallback is None or fallback.packet is None:
                fallback = result
        if fallback is not None:
            return fallback
        return ReceiveResult(
            outcome=ReceiveOutcome.FAILED,
            interfered=False,
            failure_reason="received region shorter than one frame",
        )

    def _clean_frame_candidates(self, region: ComplexSignal) -> list:
        """Candidate frame-start offsets for the clean (non-interfered) path.

        A snooping receiver can see more than one pilot in its head region
        when a weak second transmission happens to start first (the "X"
        topology's overhearing case); every candidate is tried and the one
        whose frame validates wins.
        """
        # A frame starting later than this cannot fit inside the region.
        last_possible_start = max(0, len(region) - self.frame_samples)
        head_samples = min(len(region), last_possible_start + self.pilot.length + 1)
        head_bits = self._demodulator.demodulate(region.slice(0, head_samples))
        return find_all_pilots(
            head_bits, self.pilot, max_errors=4, search_limit=last_possible_start
        )

    # ------------------------------------------------------------------
    # Interfered path
    # ------------------------------------------------------------------
    def _receive_interfered(self, region: ComplexSignal) -> ReceiveResult:
        # Locate both frames and decode whichever headers sit in the
        # interference-free head / tail.  Either header may fail to
        # validate when the overlap is deep; the frame *positions* only
        # need the pilots, which are shorter and therefore more robust.
        try:
            first_start, first_header = self._decode_leading_header(region)
        except SynchronizationError as exc:
            return self._with_best_effort(
                region,
                ReceiveResult(
                    outcome=ReceiveOutcome.FAILED,
                    interfered=True,
                    failure_reason=f"leading pilot: {exc}",
                ),
            )
        try:
            second_start, second_header = self._decode_trailing_header(region)
        except SynchronizationError as exc:
            return self._with_best_effort(
                region,
                ReceiveResult(
                    outcome=ReceiveOutcome.FAILED,
                    interfered=True,
                    first_header=first_header,
                    failure_reason=f"trailing pilot: {exc}",
                ),
            )

        first_known = (
            self.known_frames.lookup_header(first_header) if first_header is not None else None
        )
        second_known = (
            self.known_frames.lookup_header(second_header) if second_header is not None else None
        )

        if first_known is None and second_known is None:
            if first_header is not None and second_header is not None:
                outcome = ReceiveOutcome.NEEDS_RELAY
                reason = "neither colliding packet is known"
            else:
                outcome = ReceiveOutcome.FAILED
                reason = "could not validate either colliding header"
            return self._with_best_effort(
                region,
                ReceiveResult(
                    outcome=outcome,
                    interfered=True,
                    first_header=first_header,
                    second_header=second_header,
                    failure_reason=reason,
                ),
            )

        if first_known is not None:
            known_frame, known_offset = first_known, first_start
            unknown_offset, unknown_header = second_start, second_header
        else:
            known_frame, known_offset = second_known, second_start
            unknown_offset, unknown_header = first_start, first_header

        try:
            bits, diagnostics = self.decoder.decode(
                region,
                known_frame.bits,
                known_offset=known_offset,
                unknown_offset=unknown_offset,
                unknown_n_bits=self.frame_bits,
            )
        except DecodingError as exc:
            return ReceiveResult(
                outcome=ReceiveOutcome.FAILED,
                interfered=True,
                first_header=first_header,
                second_header=second_header,
                failure_reason=f"interference decoding failed: {exc}",
            )

        parsed = self.deframer.parse(bits)
        packet = parsed.packet
        if packet is None and unknown_header is not None:
            # The payload region was recovered but the embedded header copy
            # was corrupted; rebuild the packet from the header we already
            # decoded out of the clean region so the payload is not lost.
            payload_region, _ = self.deframer.extract_payload_region(bits)
            descrambled = self.deframer.scrambler.descramble(payload_region)
            from repro.coding.crc import check_and_strip_crc

            payload, crc_ok = check_and_strip_crc(descrambled)
            packet = Packet(
                source=unknown_header.source,
                destination=unknown_header.destination,
                sequence=unknown_header.sequence,
                payload=payload,
            )
            parsed_crc_ok = crc_ok
        elif packet is None:
            return ReceiveResult(
                outcome=ReceiveOutcome.FAILED,
                interfered=True,
                first_header=first_header,
                second_header=second_header,
                decoded_bits=bits,
                diagnostics=diagnostics,
                failure_reason="decoded frame failed header validation",
            )
        else:
            parsed_crc_ok = parsed.payload_crc_ok

        return ReceiveResult(
            outcome=ReceiveOutcome.ANC_DECODED,
            packet=packet,
            crc_ok=parsed_crc_ok,
            interfered=True,
            first_header=first_header,
            second_header=second_header,
            decoded_bits=bits,
            diagnostics=diagnostics,
        )

    def _with_best_effort(self, region: ComplexSignal, result: ReceiveResult) -> ReceiveResult:
        """Attach a best-effort standard decode to a non-decodable collision.

        A receiver that cannot cancel either colliding packet still tries
        ordinary demodulation — if one component strongly dominates (the
        overhearing situation in the "X" topology) the dominant frame often
        comes out intact.  The pipeline outcome (NEEDS_RELAY / FAILED) is
        preserved so routers still amplify-and-forward; the snooped packet
        rides along in ``packet`` / ``crc_ok`` for callers that can use it.
        """
        best_effort = self._receive_clean(region)
        if best_effort.packet is not None:
            result.packet = best_effort.packet
            result.crc_ok = best_effort.crc_ok
            if result.decoded_bits is None:
                result.decoded_bits = best_effort.decoded_bits
        return result

    # ------------------------------------------------------------------
    # Header extraction from the clean head / tail
    # ------------------------------------------------------------------
    def _decode_leading_header(self, region: ComplexSignal):
        """Align on the leading pilot and decode the first frame's header.

        Returns ``(frame_start_sample, header_or_None)``.  Alignment
        failure (no pilot) raises; a header that does not validate — e.g.
        because the overlap reaches into it — yields ``None`` so the caller
        can still proceed if the *other* frame is the known one.
        """
        alignment = align_known_frame(region, pilot=self.pilot)
        start = alignment.frame_start_sample
        needed = self._header_region_bits + 1
        head = region.slice(start, start + needed)
        if len(head) < needed:
            return start, None
        bits = self._demodulator.demodulate(head)
        header = Header.try_from_bits(bits[self.pilot.length : self._header_region_bits])
        return start, header

    def _decode_trailing_header(self, region: ComplexSignal):
        """Align on the trailing pilot and decode the second frame's header.

        The tail of the composite is interference-free and contains the
        second frame's mirrored pilot and header.  Demodulating the
        time-reversed waveform and flipping the bits yields the second
        frame's bits in back-to-front reading order, i.e. pilot first —
        exactly the same structure the leading-header decoder sees.
        Returns ``(forward_frame_start_sample, header_or_None)``.
        """
        reversed_region = ComplexSignal(region.samples[::-1])
        rev_start = self._align_backward(reversed_region)
        forward_start = len(region) - rev_start - self.frame_samples
        if forward_start < 0:
            raise SynchronizationError("trailing frame extends beyond the received region")
        needed = self._header_region_bits + 1
        tail = reversed_region.slice(rev_start, rev_start + needed)
        if len(tail) < needed:
            return forward_start, None
        bits = (1 - self._demodulator.demodulate(tail)).astype(np.uint8)
        header = Header.try_from_bits(bits[self.pilot.length : self._header_region_bits])
        return forward_start, header

    def _align_backward(self, reversed_region: ComplexSignal) -> int:
        """Find the second frame's start within the time-reversed waveform."""
        demod = self._demodulator
        search_bits = 256
        head = reversed_region.slice(0, min(len(reversed_region), search_bits + 1))
        bits = (1 - demod.demodulate(head)).astype(np.uint8)
        index = find_pilot(bits, self.pilot, max_errors=4)
        if index is None:
            raise SynchronizationError("pilot not found in the interference-free tail")
        return int(index)
