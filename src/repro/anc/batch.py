"""Vectorized ANC decoding kernels over a batch of interfered blocks.

These are the trial-batched counterparts of :mod:`repro.anc.lemma` and
:mod:`repro.anc.matching`: one call computes the Lemma 6.1 phase
solutions, the Eq. 7-8 phase-difference matching, and the clean-interval
differential slicing for every trial of a ``(n_trials, n_samples)`` block
at once.  :meth:`repro.anc.decoder.InterferenceDecoder.decode_batch`
drives them after grouping trials by collision geometry.

Bit-exactness contract
----------------------
Row ``i`` of every output is **bit-identical** to running the scalar
kernel on row ``i`` of the input.  Two implementation rules make that
hold and must be preserved when editing this module:

* every array operation is elementwise (or a reduction the scalar path
  performs over the very same values in the very same order), so IEEE-754
  results cannot differ from the scalar path's; and
* the handful of *scalar* products the reference path computes in Python
  floats (``A**2``, ``B**2``, ``2AB``) are precomputed per trial with the
  same Python-float arithmetic rather than re-derived with numpy array
  power, because ``pow``-family library calls are not guaranteed to round
  identically to the multiply sequence on every platform.

``tests/properties/test_batch_equivalence.py`` enforces the contract with
hypothesis-generated collisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import DecodingError
from repro.utils.angles import TWO_PI, wrap_angle
from repro.utils.validation import ensure_positive

#: np.isclose(x, -pi) threshold for finite x: ``atol + rtol * |-pi|`` with
#: the isclose defaults, evaluated exactly as np.isclose evaluates it.
_MINUS_PI_TOLERANCE = 1e-8 + 1e-5 * np.pi


def _wrap_angle_fast(angle: np.ndarray) -> np.ndarray:
    """Bit-identical fast path of :func:`repro.utils.angles.wrap_angle`.

    Precondition: ``angle`` lies in ``(-2*pi, 2*pi]`` — always true here,
    since every input is a difference of two already-wrapped angles.  Two
    reference operations are then replaced by provably bit-identical
    cheaper ones:

    * ``np.mod(t, 2*pi)`` for the shifted ``t = angle + pi`` in
      ``(-pi, 3*pi]`` reduces to a conditional ``t + 2*pi`` / ``t - 2*pi``
      / ``t``.  The negative branch performs the identical IEEE addition
      ``np.mod`` performs after its (exact) ``fmod``; the ``t >= 2*pi``
      branch is exact by the Sterbenz lemma (``pi <= t <= 4*pi``), hence
      equal to ``fmod``'s exact remainder.  Only the sign of a zero can
      differ, and the subsequent ``- pi`` erases that.
    * ``np.isclose(wrapped, -pi)`` for finite inputs reduces to
      ``|wrapped + pi| <= atol + rtol * pi`` with the isclose defaults.

    NaNs propagate identically (every comparison involving NaN is False
    on both paths, leaving the NaN in place).
    """
    wrapped = angle + np.pi  # fresh array, safe to mutate in place
    # Both masks are taken before either adjustment: a tiny negative
    # shifted value rounds to exactly 2*pi after the addition, and
    # np.mod's single-pass semantics must not see it subtracted again.
    negative = wrapped < 0
    overflow = wrapped >= TWO_PI
    np.add(wrapped, TWO_PI, out=wrapped, where=negative)
    np.subtract(wrapped, TWO_PI, out=wrapped, where=overflow)
    wrapped -= np.pi
    np.copyto(wrapped, np.pi, where=np.abs(wrapped + np.pi) <= _MINUS_PI_TOLERANCE)
    return wrapped


@dataclass(frozen=True)
class BatchPhaseSolutions:
    """Both Lemma 6.1 candidate phase pairs for every trial and sample.

    All arrays have shape ``(n_trials, n_samples)``; trial ``i``'s rows
    equal the scalar :class:`~repro.anc.lemma.PhaseSolutions` fields for
    that trial's block and amplitudes.
    """

    theta1: np.ndarray
    phi1: np.ndarray
    theta2: np.ndarray
    phi2: np.ndarray
    cosine: np.ndarray

    @property
    def n_trials(self) -> int:
        """Number of trials in the batch."""
        return int(self.theta1.shape[0])

    @property
    def n_samples(self) -> int:
        """Samples per trial."""
        return int(self.theta1.shape[1])


@dataclass(frozen=True)
class BatchMatchResult:
    """Output of the batched Eq. 7-8 matching step.

    All arrays have shape ``(n_trials, n_intervals)``; trial ``i``'s rows
    equal the scalar :class:`~repro.anc.matching.MatchResult` fields.
    """

    unknown_differences: np.ndarray
    known_differences_selected: np.ndarray
    match_errors: np.ndarray
    bits: np.ndarray


def _amplitude_products(
    amplitudes_a: Sequence[float], amplitudes_b: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-trial ``(A, B, A^2, B^2, 2AB)`` columns, in Python-float arithmetic.

    The scalar kernels compute these with Python floats; reproducing them
    elementwise here (instead of ``array ** 2``) is what keeps the batch
    path bit-identical on platforms whose ``pow`` is not correctly
    rounded.  Returned as ``(n_trials, 1)`` columns ready to broadcast.
    """
    a_list = [ensure_positive(a, "amplitude_a") for a in amplitudes_a]
    b_list = [ensure_positive(b, "amplitude_b") for b in amplitudes_b]
    if len(a_list) != len(b_list):
        raise DecodingError("amplitude_a and amplitude_b must have equal length")
    column = lambda values: np.asarray(values, dtype=float)[:, None]  # noqa: E731
    a = column(a_list)
    b = column(b_list)
    a_sq = column([value ** 2 for value in a_list])
    b_sq = column([value ** 2 for value in b_list])
    two_ab = column([2.0 * av * bv for av, bv in zip(a_list, b_list)])
    return a, b, a_sq, b_sq, two_ab


def batch_interference_cosine(
    samples: np.ndarray,
    amplitudes_a: Sequence[float],
    amplitudes_b: Sequence[float],
) -> np.ndarray:
    """Per-trial ``D = cos(theta - phi)``, clipped to ``[-1, 1]``.

    Row ``i`` equals :func:`repro.anc.lemma.interference_cosine` of row
    ``i`` with that trial's amplitudes.
    """
    _, _, a_sq, b_sq, two_ab = _amplitude_products(amplitudes_a, amplitudes_b)
    y = np.asarray(samples, dtype=np.complex128)
    magnitude_sq = np.abs(y) ** 2
    raw = (magnitude_sq - a_sq - b_sq) / two_ab
    return np.clip(raw, -1.0, 1.0)


def batch_phase_solutions(
    samples: np.ndarray,
    amplitudes_a: Sequence[float],
    amplitudes_b: Sequence[float],
) -> BatchPhaseSolutions:
    """Both Lemma 6.1 solutions for every sample of every trial's block.

    Parameters
    ----------
    samples:
        Interfered complex blocks, shape ``(n_trials, n_samples)``.
    amplitudes_a / amplitudes_b:
        One known/unknown received-amplitude pair per trial.
    """
    a, b, a_sq, b_sq, two_ab = _amplitude_products(amplitudes_a, amplitudes_b)
    y = np.asarray(samples, dtype=np.complex128)
    if y.shape[1] == 0:
        empty = np.zeros(y.shape, dtype=float)
        return BatchPhaseSolutions(empty, empty, empty, empty, empty)
    magnitude_sq = np.abs(y) ** 2
    cosine = np.clip((magnitude_sq - a_sq - b_sq) / two_ab, -1.0, 1.0)
    sine = np.sqrt(np.maximum(1.0 - cosine ** 2, 0.0))
    # Branch 1: sin(phi - theta) = +sine.
    theta1 = np.angle(y * (a + b * cosine - 1j * b * sine))
    phi1 = np.angle(y * (b + a * cosine + 1j * a * sine))
    # Branch 2: sin(phi - theta) = -sine.
    theta2 = np.angle(y * (a + b * cosine + 1j * b * sine))
    phi2 = np.angle(y * (b + a * cosine - 1j * a * sine))
    return BatchPhaseSolutions(theta1=theta1, phi1=phi1, theta2=theta2, phi2=phi2, cosine=cosine)


def batch_match_phase_differences(
    solutions: BatchPhaseSolutions,
    known_differences: np.ndarray,
) -> BatchMatchResult:
    """Pick the best candidate pair for every interval of every trial.

    ``known_differences`` holds one ``delta theta_s`` row per trial, shape
    ``(n_trials, n_samples - 1)``.  Candidate enumeration, the Eq. 8
    error, and the argmin tie-break all mirror the scalar
    :func:`repro.anc.matching.match_phase_differences` exactly.
    """
    known = np.asarray(known_differences, dtype=float)
    n_samples = solutions.n_samples
    if n_samples < 2:
        raise DecodingError("at least two samples are required to form phase differences")
    n_intervals = n_samples - 1
    if known.shape != (solutions.n_trials, n_intervals):
        raise DecodingError(
            f"known_differences has shape {known.shape} but the batch has "
            f"{solutions.n_trials} trials of {n_intervals} sample intervals"
        )

    theta = np.stack([solutions.theta1, solutions.theta2])  # (2, T, N+1)
    phi = np.stack([solutions.phi1, solutions.phi2])

    # Candidate differences for every (x, y) branch combination, per trial:
    #   delta_theta[x, y, t, n] = theta_x[t, n + 1] - theta_y[t, n]
    delta_theta = _wrap_angle_fast(theta[:, None, :, 1:] - theta[None, :, :, :-1])  # (2, 2, T, N)
    # The phi candidates are wrapped lazily: only the selected (T, N)
    # slice ever needs it, and wrap-then-select equals select-then-wrap
    # elementwise, so this saves one full 4x-candidate wrap pass without
    # touching a single output bit.
    raw_delta_phi = phi[:, None, :, 1:] - phi[None, :, :, :-1]

    # delta_theta lies in (-pi, pi], so the subtraction stays inside
    # _wrap_angle_fast's (-2*pi, 2*pi] domain whenever the known
    # differences are themselves wrapped (the decoder's always are:
    # +/-pi/2).  For out-of-range callers fall back to the reference
    # wrap — the scalar path uses it on the identical values, so both
    # branches stay bit-identical to it.
    known_wrapped = known.size == 0 or float(np.max(np.abs(known))) <= np.pi
    error_wrap = _wrap_angle_fast if known_wrapped else wrap_angle
    errors = np.abs(error_wrap(delta_theta - known[None, None, :, :]))  # (2, 2, T, N)
    flat_errors = errors.reshape(4, solutions.n_trials, n_intervals)
    best = np.argmin(flat_errors, axis=0)  # (T, N), same first-wins tie-break

    flat_delta_phi = raw_delta_phi.reshape(4, solutions.n_trials, n_intervals)
    flat_delta_theta = delta_theta.reshape(4, solutions.n_trials, n_intervals)
    selector = best[None, :, :]
    selected_phi = _wrap_angle_fast(np.take_along_axis(flat_delta_phi, selector, axis=0)[0])
    selected_theta = np.take_along_axis(flat_delta_theta, selector, axis=0)[0]
    selected_errors = np.take_along_axis(flat_errors, selector, axis=0)[0]

    bits = (selected_phi >= 0).astype(np.uint8)
    return BatchMatchResult(
        unknown_differences=selected_phi,
        known_differences_selected=selected_theta,
        match_errors=selected_errors,
        bits=bits,
    )


def batch_differential_bits(blocks: np.ndarray) -> np.ndarray:
    """Standard differential MSK slicing of every trial's clean block.

    Row ``i`` equals the scalar clean-interval fallback: the angle of the
    conjugate product of consecutive samples, thresholded at zero.
    """
    y = np.asarray(blocks, dtype=np.complex128)
    ratio = y[:, 1:] * np.conj(y[:, :-1])
    return (np.angle(ratio) >= 0).astype(np.uint8)
