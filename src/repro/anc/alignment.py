"""Alignment of the known signal and detection of the second packet (§7.2).

A collision is never perfectly synchronised: the first packet's head and
the second packet's tail are interference-free.  The receiver exploits
this in three steps, implemented here:

* ``align_known_frame`` — demodulate the interference-free head with
  standard MSK, search for the protocol pilot, and return the sample
  offset at which the first frame starts.
* ``find_interference_start`` — locate where the second signal joins, via
  the step in the windowed energy of the composite.
* ``refine_unknown_offset`` — fine-tune that coarse estimate by trying
  nearby offsets and scoring the ANC-decoded first bits of the unknown
  frame against the pilot (the unknown frame also begins with the known
  protocol pilot, so the best-scoring offset is the right one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.anc.lemma import phase_solutions
from repro.anc.matching import match_phase_differences
from repro.exceptions import SynchronizationError
from repro.framing.pilot import PilotSequence, find_pilot
from repro.modulation.msk import MSKDemodulator
from repro.signal.samples import ComplexSignal
from repro.utils.windows import moving_average


@dataclass(frozen=True)
class AlignmentResult:
    """Where the known frame starts within the received sample stream.

    Attributes
    ----------
    frame_start_sample:
        Index of the frame's reference sample within the received stream.
    pilot_bit_index:
        Bit index (within the demodulated head) at which the pilot was found.
    head_bits:
        The bits demodulated from the interference-free head (diagnostic).
    """

    frame_start_sample: int
    pilot_bit_index: int
    head_bits: np.ndarray


def align_known_frame(
    received: ComplexSignal,
    pilot: Optional[PilotSequence] = None,
    search_bits: int = 256,
    max_pilot_errors: int = 4,
) -> AlignmentResult:
    """Find where the first frame starts by locating the pilot in the clean head.

    Parameters
    ----------
    received:
        The received sample stream, starting at (or before) the beginning
        of the first packet.
    pilot:
        The protocol pilot sequence (defaults to the standard 64-bit pilot).
    search_bits:
        How many demodulated head bits to search for the pilot.
    max_pilot_errors:
        Bit-error tolerance of the pilot match.

    Raises
    ------
    SynchronizationError
        If the pilot cannot be found — the paper's receiver drops the
        packet in this case (§7.2).
    """
    pilot_seq = pilot if pilot is not None else PilotSequence()
    demodulator = MSKDemodulator(samples_per_symbol=1)
    head = received.slice(0, min(len(received), search_bits + 1))
    head_bits = demodulator.demodulate(head)
    index = find_pilot(head_bits, pilot_seq, max_errors=max_pilot_errors)
    if index is None:
        raise SynchronizationError("pilot sequence not found in the interference-free head")
    # With one sample per symbol, the bit at index k is carried by samples
    # (k, k + 1); the frame's reference sample is therefore at sample k.
    return AlignmentResult(
        frame_start_sample=int(index),
        pilot_bit_index=int(index),
        head_bits=head_bits,
    )


def find_interference_start(
    received: ComplexSignal,
    window: int = 16,
    min_step_ratio: float = 1.5,
    search_from: int = 0,
) -> Optional[int]:
    """Coarse estimate of the sample at which the second signal joins.

    The windowed mean energy of the composite jumps from ``A^2`` to roughly
    ``A^2 + B^2`` when the second transmission starts.  This function
    returns the first sample (at or after ``search_from``) where the
    windowed energy exceeds ``min_step_ratio`` times the energy of the
    initial clean region, or ``None`` if no such step exists (i.e. the
    packets do not actually overlap).
    """
    samples = received.samples
    if samples.size < 2 * window:
        return None
    energy = np.abs(samples) ** 2
    smoothed = moving_average(energy, window)
    baseline_region = smoothed[search_from + window : search_from + 4 * window]
    if baseline_region.size == 0:
        return None
    baseline = float(np.median(baseline_region))
    if baseline <= 0:
        return None
    threshold = min_step_ratio * baseline
    above = np.nonzero(smoothed[search_from:] > threshold)[0]
    if above.size == 0:
        return None
    # The moving window is trailing, so the true step is up to (window - 1)
    # samples before the index at which the smoothed energy crosses.
    return int(search_from + above[0] - (window - 1))


def refine_unknown_offset(
    received: ComplexSignal,
    coarse_offset: int,
    amplitude_known: float,
    amplitude_unknown: float,
    known_differences_for: "callable",
    pilot: Optional[PilotSequence] = None,
    search_radius: int = 6,
) -> int:
    """Fine-tune the unknown frame's start offset using its leading pilot.

    The unknown frame starts with the protocol pilot, which the receiver
    knows.  For every candidate offset around the coarse estimate, the
    first ``pilot.length`` unknown bits are decoded with the ANC algorithm
    and scored against the pilot; the offset with the fewest mismatches
    wins.  This mirrors the "Matching" stage of Fig. 5.

    Parameters
    ----------
    received:
        The composite sample stream.
    coarse_offset:
        Starting point of the search (e.g. from :func:`find_interference_start`).
    amplitude_known, amplitude_unknown:
        Estimated received amplitudes of the known and unknown signals.
    known_differences_for:
        Callable ``(first_sample, n_intervals) -> np.ndarray`` returning
        the known signal's phase differences for the sample intervals
        starting at ``first_sample``; the decoder provides this from the
        aligned known frame.
    pilot:
        The protocol pilot (defaults to the standard one).
    search_radius:
        Candidate offsets ``coarse_offset ± search_radius`` are evaluated.

    Returns
    -------
    int
        The best-scoring start offset for the unknown frame.
    """
    pilot_seq = pilot if pilot is not None else PilotSequence()
    pilot_bits = pilot_seq.bits
    n_bits = pilot_bits.size
    samples = received.samples
    best_offset = int(coarse_offset)
    best_errors = n_bits + 1
    for offset in range(coarse_offset - search_radius, coarse_offset + search_radius + 1):
        if offset < 0:
            continue
        end = offset + n_bits + 1
        if end > samples.size:
            continue
        block = samples[offset:end]
        known_diffs = known_differences_for(offset, n_bits)
        if known_diffs is None or known_diffs.size != n_bits:
            continue
        solutions = phase_solutions(block, amplitude_known, amplitude_unknown)
        result = match_phase_differences(solutions, known_diffs)
        errors = int(np.count_nonzero(result.bits != pilot_bits))
        if errors < best_errors:
            best_errors = errors
            best_offset = offset
            if errors == 0:
                break
    return best_offset
