"""Lemma 6.1: the two possible phase pairs of an interfered sample.

A received interfered sample is ``y[n] = A e^{i theta[n]} + B e^{i phi[n]}``
(Eq. 2).  Knowing only ``y[n]``, ``A`` and ``B``, the pair
``(theta[n], phi[n])`` is determined up to a two-fold ambiguity — the two
ways a vector of length ``A`` and a vector of length ``B`` can sum to
``y[n]`` (Fig. 4).  This module computes both solutions, vectorised over a
whole block of samples:

.. math::

    theta[n] = \\arg(y[n] (A + B D \\pm i B \\sqrt{1 - D^2}))

    phi[n]   = \\arg(y[n] (B + A D \\mp i A \\sqrt{1 - D^2}))

with ``D = (|y[n]|^2 - A^2 - B^2) / (2AB)``.  The pairing of signs is
fixed: solution 1 takes the minus sign for ``theta`` and plus for ``phi``
(corresponding to ``sin(phi - theta) > 0``), solution 2 the opposite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.exceptions import DecodingError
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_complex_array, ensure_positive

SignalLike = Union[ComplexSignal, np.ndarray]


def _as_samples(signal: SignalLike) -> np.ndarray:
    if isinstance(signal, ComplexSignal):
        return signal.samples
    return ensure_complex_array(signal, "samples")


def interference_cosine(samples: SignalLike, amplitude_a: float, amplitude_b: float) -> np.ndarray:
    """The quantity ``D = cos(theta - phi)`` implied by each sample's magnitude.

    Values are clipped to ``[-1, 1]``: receiver noise routinely pushes the
    raw ratio slightly outside the valid range, and clipping is the
    maximum-likelihood projection back onto it.
    """
    a = ensure_positive(amplitude_a, "amplitude_a")
    b = ensure_positive(amplitude_b, "amplitude_b")
    y = _as_samples(samples)
    magnitude_sq = np.abs(y) ** 2
    raw = (magnitude_sq - a ** 2 - b ** 2) / (2.0 * a * b)
    return np.clip(raw, -1.0, 1.0)


@dataclass(frozen=True)
class PhaseSolutions:
    """Both candidate phase pairs for every sample of an interfered block.

    Attributes
    ----------
    theta1, phi1:
        First solution pair (``sin(phi - theta) >= 0`` branch).
    theta2, phi2:
        Second solution pair (the mirror-image branch).
    cosine:
        The clipped ``D`` values; ``|D|`` close to 1 flags samples whose
        two solutions (nearly) coincide and therefore carry little
        information for disambiguation.
    """

    theta1: np.ndarray
    phi1: np.ndarray
    theta2: np.ndarray
    phi2: np.ndarray
    cosine: np.ndarray

    def __len__(self) -> int:
        return int(self.theta1.size)

    def theta(self, branch: int) -> np.ndarray:
        """Theta candidates of branch 1 or 2."""
        if branch == 1:
            return self.theta1
        if branch == 2:
            return self.theta2
        raise DecodingError("branch must be 1 or 2")

    def phi(self, branch: int) -> np.ndarray:
        """Phi candidates of branch 1 or 2."""
        if branch == 1:
            return self.phi1
        if branch == 2:
            return self.phi2
        raise DecodingError("branch must be 1 or 2")


def phase_solutions(
    samples: SignalLike,
    amplitude_a: float,
    amplitude_b: float,
) -> PhaseSolutions:
    """Compute both Lemma 6.1 solutions for every sample of a block.

    Parameters
    ----------
    samples:
        The received interfered complex samples ``y[n]``.
    amplitude_a:
        Received amplitude ``A`` of the *known* signal.
    amplitude_b:
        Received amplitude ``B`` of the *unknown* signal.

    Returns
    -------
    PhaseSolutions
        Candidate phases for each sample.  ``theta`` always refers to the
        signal of amplitude ``A`` and ``phi`` to the signal of amplitude
        ``B``, matching the paper's notation where Alice's own signal is
        the ``A`` component.
    """
    a = ensure_positive(amplitude_a, "amplitude_a")
    b = ensure_positive(amplitude_b, "amplitude_b")
    y = _as_samples(samples)
    if y.size == 0:
        empty = np.zeros(0, dtype=float)
        return PhaseSolutions(empty, empty, empty, empty, empty)
    cosine = interference_cosine(y, a, b)
    sine = np.sqrt(np.maximum(1.0 - cosine ** 2, 0.0))
    # Branch 1: sin(phi - theta) = +sine.
    theta1 = np.angle(y * (a + b * cosine - 1j * b * sine))
    phi1 = np.angle(y * (b + a * cosine + 1j * a * sine))
    # Branch 2: sin(phi - theta) = -sine.
    theta2 = np.angle(y * (a + b * cosine + 1j * b * sine))
    phi2 = np.angle(y * (b + a * cosine - 1j * a * sine))
    return PhaseSolutions(theta1=theta1, phi1=phi1, theta2=theta2, phi2=phi2, cosine=cosine)


def reconstruct_sample(
    amplitude_a: float,
    amplitude_b: float,
    theta: float,
    phi: float,
) -> complex:
    """Rebuild ``A e^{i theta} + B e^{i phi}`` — the inverse of the lemma.

    Used in tests and diagnostics to confirm that a chosen solution pair is
    consistent with the observed sample.
    """
    return amplitude_a * np.exp(1j * theta) + amplitude_b * np.exp(1j * phi)
