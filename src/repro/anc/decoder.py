"""The ANC interference decoder (§6, §7.4).

Given the composite waveform of a two-packet collision and the bits of the
packet it already knows (its own earlier transmission, or an overheard
one), the decoder recovers the bits of the *other* packet:

1. estimate the two received amplitudes ``A`` (known) and ``B`` (unknown)
   from the energy statistics of the overlap region (Eqs. 5-6), using the
   interference-free head as a labelling hint;
2. for the interfered sample intervals, compute both Lemma 6.1 phase
   solutions, form the four candidate phase-difference pairs, pick the one
   whose known-signal difference best matches the regenerated
   ``delta theta_s`` (Eqs. 7-8), and slice the paired ``delta phi``;
3. for the sample intervals where only the unknown signal is present
   (before the known packet started or after it ended), fall back to
   standard differential MSK demodulation.

The decoder works "forward" when the known packet starts first (Alice's
case).  When the known packet starts *second* (Bob's case, §7.4) the same
procedure is run backwards: the received samples and the known bit
sequence are reversed — which negates every phase difference and therefore
inverts the slicing rule — and the decoded bits are un-reversed at the end.

A naive :class:`SubtractionDecoder` is also provided.  It estimates the
known signal's complex channel coefficient, reconstructs the interfering
waveform, subtracts it and runs plain MSK demodulation — the fragile
strawman the paper argues against in §6; the ablation benchmark compares
the two under channel-estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.anc.amplitude import (
    AmplitudeEstimate,
    estimate_amplitudes_with_known,
    mean_energy,
    sigma_statistic,
)
from repro.anc.lemma import phase_solutions
from repro.anc.matching import match_phase_differences
from repro.constants import MSK_PHASE_STEP
from repro.exceptions import DecodingError
from repro.modulation.msk import expected_phase_differences
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_bit_array


@dataclass(frozen=True)
class DecoderConfig:
    """Tunable parameters of the interference decoder.

    Attributes
    ----------
    min_head_samples:
        Minimum number of interference-free head samples needed before the
        head is trusted as a direct amplitude measurement for the known
        signal.
    amplitude_method:
        How the two received amplitudes are obtained:

        * ``"hybrid"`` (default) — measure the known signal's amplitude
          ``A`` directly from the interference-free head (or tail) and
          derive ``B`` from the mean-energy relation ``mu = A^2 + B^2``
          (Eq. 5).  This uses the partial-overlap structure the protocol
          already enforces and is robust even when the two signals'
          relative phase barely rotates over the packet.
        * ``"sigma"`` — the paper's two-statistic estimator (Eqs. 5-6)
          applied to the overlap region, with the clean head used only to
          resolve which amplitude belongs to the known signal.
        * ``"oracle"`` — bypass estimation and use ``amplitude_oracle``;
          for the ablation that isolates estimation error.
    amplitude_oracle:
        The ``(A, B)`` pair used when ``amplitude_method == "oracle"``.
    """

    min_head_samples: int = 8
    amplitude_method: str = "hybrid"
    amplitude_oracle: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.amplitude_method not in {"hybrid", "sigma", "oracle"}:
            raise DecodingError(
                f"unknown amplitude_method {self.amplitude_method!r}; "
                "expected 'hybrid', 'sigma' or 'oracle'"
            )
        if self.amplitude_method == "oracle" and self.amplitude_oracle is None:
            raise DecodingError("amplitude_method='oracle' requires amplitude_oracle")


@dataclass
class DecodeDiagnostics:
    """Per-decode diagnostics useful for experiments and debugging."""

    amplitude_estimate: Optional[AmplitudeEstimate] = None
    overlap_samples: int = 0
    interfered_bits: int = 0
    clean_bits: int = 0
    mean_match_error: float = 0.0
    reversed_decode: bool = False


class InterferenceDecoder:
    """Decode the unknown half of a two-packet collision."""

    def __init__(self, config: Optional[DecoderConfig] = None) -> None:
        self.config = config if config is not None else DecoderConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def decode(
        self,
        received: ComplexSignal,
        known_bits,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
    ) -> Tuple[np.ndarray, DecodeDiagnostics]:
        """Decode the unknown packet's bits out of the composite waveform.

        Parameters
        ----------
        received:
            The composite received waveform (forward time order).
        known_bits:
            The full frame bits of the packet the receiver already knows.
        known_offset:
            Sample index (within ``received``) of the known frame's
            reference sample.
        unknown_offset:
            Sample index of the unknown frame's reference sample.
        unknown_n_bits:
            Number of bits to decode for the unknown frame.

        Returns
        -------
        (bits, diagnostics)
            The decoded unknown frame bits, in forward order, plus
            diagnostics.  The decoder automatically runs backwards when the
            known frame starts after the unknown one.
        """
        known = ensure_bit_array(known_bits, "known_bits")
        if unknown_n_bits <= 0:
            raise DecodingError("unknown_n_bits must be positive")
        if known_offset < 0 or unknown_offset < 0:
            raise DecodingError("frame offsets must be non-negative")
        if known_offset <= unknown_offset:
            return self._decode_forward(
                received, known, known_offset, unknown_offset, unknown_n_bits
            )
        return self._decode_backward(
            received, known, known_offset, unknown_offset, unknown_n_bits
        )

    # ------------------------------------------------------------------
    # Forward decoding (known packet starts first)
    # ------------------------------------------------------------------
    def _decode_forward(
        self,
        received: ComplexSignal,
        known_bits: np.ndarray,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
        reversed_decode: bool = False,
    ) -> Tuple[np.ndarray, DecodeDiagnostics]:
        samples = received.samples
        known_n_samples = known_bits.size + 1
        known_end = known_offset + known_n_samples
        unknown_end = unknown_offset + unknown_n_bits + 1
        if unknown_end > samples.size:
            raise DecodingError(
                "received waveform is too short for the requested unknown frame"
            )

        diagnostics = DecodeDiagnostics(reversed_decode=reversed_decode)
        amplitude_a, amplitude_b = self._estimate_amplitudes(
            samples, known_offset, known_end, unknown_offset, unknown_end, diagnostics
        )

        known_diffs_full = expected_phase_differences(known_bits)
        bits = np.zeros(unknown_n_bits, dtype=np.uint8)
        match_errors = []

        def known_active(sample_index: int) -> bool:
            return known_offset <= sample_index < known_end

        # Partition the unknown bit indices into maximal runs of
        # "interfered" (both samples of the interval overlap the known
        # frame) and "clean" intervals, and decode each run in one shot.
        interval_interfered = np.zeros(unknown_n_bits, dtype=bool)
        for i in range(unknown_n_bits):
            n = unknown_offset + i
            interval_interfered[i] = known_active(n) and known_active(n + 1)

        i = 0
        while i < unknown_n_bits:
            j = i
            while j < unknown_n_bits and interval_interfered[j] == interval_interfered[i]:
                j += 1
            first_sample = unknown_offset + i
            last_sample = unknown_offset + j  # inclusive end sample of the run
            block = samples[first_sample : last_sample + 1]
            if interval_interfered[i]:
                known_indices = np.arange(first_sample, last_sample) - known_offset
                known_diffs = known_diffs_full[known_indices]
                solutions = phase_solutions(block, amplitude_a, amplitude_b)
                result = match_phase_differences(solutions, known_diffs)
                bits[i:j] = result.bits
                match_errors.append(result.match_errors)
                diagnostics.interfered_bits += j - i
            else:
                ratio = block[1:] * np.conj(block[:-1])
                bits[i:j] = (np.angle(ratio) >= 0).astype(np.uint8)
                diagnostics.clean_bits += j - i
            i = j

        if match_errors:
            diagnostics.mean_match_error = float(np.mean(np.concatenate(match_errors)))
        return bits, diagnostics

    # ------------------------------------------------------------------
    # Backward decoding (known packet starts second, §7.4)
    # ------------------------------------------------------------------
    def _decode_backward(
        self,
        received: ComplexSignal,
        known_bits: np.ndarray,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
    ) -> Tuple[np.ndarray, DecodeDiagnostics]:
        samples = received.samples
        total = samples.size
        reversed_signal = ComplexSignal(samples[::-1])
        known_n_samples = known_bits.size + 1
        unknown_n_samples = unknown_n_bits + 1
        # In the reversed stream, a frame that occupied samples
        # [offset, offset + n) now occupies [total - offset - n, total - offset).
        rev_known_offset = total - known_offset - known_n_samples
        rev_unknown_offset = total - unknown_offset - unknown_n_samples
        if rev_known_offset < 0 or rev_unknown_offset < 0:
            raise DecodingError("frame extends beyond the received waveform")
        # Reversing time reverses the bit order and negates every phase
        # difference; for MSK that is exactly a bit flip.
        rev_known_bits = (1 - known_bits[::-1]).astype(np.uint8)
        rev_bits, diagnostics = self._decode_forward(
            reversed_signal,
            rev_known_bits,
            rev_known_offset,
            rev_unknown_offset,
            unknown_n_bits,
            reversed_decode=True,
        )
        forward_bits = (1 - rev_bits[::-1]).astype(np.uint8)
        return forward_bits, diagnostics

    # ------------------------------------------------------------------
    # Amplitude estimation
    # ------------------------------------------------------------------
    def _estimate_amplitudes(
        self,
        samples: np.ndarray,
        known_offset: int,
        known_end: int,
        unknown_offset: int,
        unknown_end: int,
        diagnostics: DecodeDiagnostics,
    ) -> Tuple[float, float]:
        overlap_start = max(known_offset, unknown_offset)
        overlap_end = min(known_end, unknown_end)
        diagnostics.overlap_samples = max(0, overlap_end - overlap_start)
        if diagnostics.overlap_samples < 4:
            raise DecodingError(
                "packets overlap by fewer than 4 samples; nothing to decode with ANC"
            )
        if self.config.amplitude_method == "oracle":
            return self.config.amplitude_oracle

        overlap = samples[overlap_start:overlap_end]
        head = samples[known_offset:unknown_offset]
        tail = samples[known_end:unknown_end]
        head_amplitude = (
            float(np.mean(np.abs(head))) if head.size >= self.config.min_head_samples else None
        )
        tail_amplitude = (
            float(np.mean(np.abs(tail))) if tail.size >= self.config.min_head_samples else None
        )

        if self.config.amplitude_method == "hybrid":
            return self._estimate_hybrid(overlap, head_amplitude, tail_amplitude, diagnostics)
        return self._estimate_sigma(overlap, head_amplitude, tail_amplitude, diagnostics)

    def _estimate_hybrid(
        self,
        overlap: np.ndarray,
        head_amplitude: Optional[float],
        tail_amplitude: Optional[float],
        diagnostics: DecodeDiagnostics,
    ) -> Tuple[float, float]:
        """Edge measurement for A, Eq. 5 mean energy for B.

        The interference-free head contains only the known signal, so its
        mean magnitude is a direct measurement of ``A``; the unknown
        amplitude follows from ``mu = A^2 + B^2``.  When only the tail
        (unknown-only) region exists the roles are swapped; with neither,
        the method degrades to the paper's two-statistic estimator.
        """
        mu = mean_energy(overlap)
        if head_amplitude is not None:
            amplitude_a = head_amplitude
            amplitude_b = float(np.sqrt(max(mu - amplitude_a ** 2, 1e-12)))
        elif tail_amplitude is not None:
            amplitude_b = tail_amplitude
            amplitude_a = float(np.sqrt(max(mu - amplitude_b ** 2, 1e-12)))
        else:
            return self._estimate_sigma(overlap, None, None, diagnostics)
        estimate = AmplitudeEstimate(
            amplitude_a=amplitude_a,
            amplitude_b=amplitude_b,
            mu=mu,
            sigma=sigma_statistic(overlap, mu),
        )
        diagnostics.amplitude_estimate = estimate
        return amplitude_a, amplitude_b

    def _estimate_sigma(
        self,
        overlap: np.ndarray,
        head_amplitude: Optional[float],
        tail_amplitude: Optional[float],
        diagnostics: DecodeDiagnostics,
    ) -> Tuple[float, float]:
        """The paper's Eq. 5-6 estimator, with edge hints only for labelling."""
        if head_amplitude is not None:
            estimate = estimate_amplitudes_with_known(overlap, head_amplitude)
        elif tail_amplitude is not None:
            raw = estimate_amplitudes_with_known(overlap, tail_amplitude)
            # The hint matched the unknown signal, so swap the labels.
            estimate = AmplitudeEstimate(
                amplitude_a=raw.amplitude_b,
                amplitude_b=raw.amplitude_a,
                mu=raw.mu,
                sigma=raw.sigma,
            )
        else:
            hint = float(np.sqrt(np.mean(np.abs(overlap) ** 2) / 2.0))
            estimate = estimate_amplitudes_with_known(overlap, hint)
        diagnostics.amplitude_estimate = estimate
        return estimate.amplitude_a, estimate.amplitude_b


class SubtractionDecoder:
    """Naive decode-by-subtraction baseline (the §6 strawman).

    The decoder estimates the known signal's complex channel coefficient
    from the interference-free head (least-squares fit of the received head
    against the re-modulated known head), reconstructs the known signal's
    contribution over the whole packet, subtracts it, and runs standard
    differential MSK demodulation on the residue.  With a perfect, constant
    channel this works; any channel drift or estimation error leaves a
    residual that corrupts the weaker signal — which is exactly why the
    paper rejects it in favour of the phase-difference method.
    """

    def __init__(self, min_head_samples: int = 8) -> None:
        self.min_head_samples = int(min_head_samples)

    def decode(
        self,
        received: ComplexSignal,
        known_bits,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
        known_amplitude: float = 1.0,
    ) -> np.ndarray:
        """Decode the unknown packet's bits by subtracting the known signal."""
        known = ensure_bit_array(known_bits, "known_bits")
        if known_offset > unknown_offset:
            raise DecodingError(
                "SubtractionDecoder only implements the forward (known-first) case"
            )
        samples = received.samples
        unknown_end = unknown_offset + unknown_n_bits + 1
        if unknown_end > samples.size:
            raise DecodingError("received waveform too short for the unknown frame")

        # Re-modulate the known frame at unit amplitude and zero phase.
        from repro.modulation.msk import MSKModulator

        reference = MSKModulator(amplitude=1.0).modulate(known).samples
        known_end = known_offset + reference.size

        head_length = min(unknown_offset - known_offset, reference.size)
        if head_length < self.min_head_samples:
            raise DecodingError("interference-free head too short to estimate the channel")
        head_rx = samples[known_offset : known_offset + head_length]
        head_ref = reference[:head_length]
        # Least-squares complex gain: h = <rx, ref> / <ref, ref>.
        gain = np.vdot(head_ref, head_rx) / np.vdot(head_ref, head_ref)

        residual = samples.copy()
        residual[known_offset:known_end] -= gain * reference
        block = residual[unknown_offset:unknown_end]
        ratio = block[1:] * np.conj(block[:-1])
        return (np.angle(ratio) >= 0).astype(np.uint8)
