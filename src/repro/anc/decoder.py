"""The ANC interference decoder (§6, §7.4).

Given the composite waveform of a two-packet collision and the bits of the
packet it already knows (its own earlier transmission, or an overheard
one), the decoder recovers the bits of the *other* packet:

1. estimate the two received amplitudes ``A`` (known) and ``B`` (unknown)
   from the energy statistics of the overlap region (Eqs. 5-6), using the
   interference-free head as a labelling hint;
2. for the interfered sample intervals, compute both Lemma 6.1 phase
   solutions, form the four candidate phase-difference pairs, pick the one
   whose known-signal difference best matches the regenerated
   ``delta theta_s`` (Eqs. 7-8), and slice the paired ``delta phi``;
3. for the sample intervals where only the unknown signal is present
   (before the known packet started or after it ended), fall back to
   standard differential MSK demodulation.

The decoder works "forward" when the known packet starts first (Alice's
case).  When the known packet starts *second* (Bob's case, §7.4) the same
procedure is run backwards: the received samples and the known bit
sequence are reversed — which negates every phase difference and therefore
inverts the slicing rule — and the decoded bits are un-reversed at the end.

A naive :class:`SubtractionDecoder` is also provided.  It estimates the
known signal's complex channel coefficient, reconstructs the interfering
waveform, subtracts it and runs plain MSK demodulation — the fragile
strawman the paper argues against in §6; the ablation benchmark compares
the two under channel-estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.anc.amplitude import (
    AmplitudeEstimate,
    estimate_amplitudes_with_known,
    mean_energy,
    sigma_statistic,
)
from repro.anc.lemma import phase_solutions
from repro.anc.matching import match_phase_differences
from repro.backend import Backend, resolve_backend
from repro.exceptions import DecodingError
from repro.modulation.batch import batch_expected_phase_differences
from repro.modulation.msk import expected_phase_differences
from repro.signal.batch import BatchLike, ensure_batch_array
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_bit_array, ensure_bit_matrix


@dataclass(frozen=True)
class DecoderConfig:
    """Tunable parameters of the interference decoder.

    Attributes
    ----------
    min_head_samples:
        Minimum number of interference-free head samples needed before the
        head is trusted as a direct amplitude measurement for the known
        signal.
    amplitude_method:
        How the two received amplitudes are obtained:

        * ``"hybrid"`` (default) — measure the known signal's amplitude
          ``A`` directly from the interference-free head (or tail) and
          derive ``B`` from the mean-energy relation ``mu = A^2 + B^2``
          (Eq. 5).  This uses the partial-overlap structure the protocol
          already enforces and is robust even when the two signals'
          relative phase barely rotates over the packet.
        * ``"sigma"`` — the paper's two-statistic estimator (Eqs. 5-6)
          applied to the overlap region, with the clean head used only to
          resolve which amplitude belongs to the known signal.
        * ``"oracle"`` — bypass estimation and use ``amplitude_oracle``;
          for the ablation that isolates estimation error.
    amplitude_oracle:
        The ``(A, B)`` pair used when ``amplitude_method == "oracle"``.
    """

    min_head_samples: int = 8
    amplitude_method: str = "hybrid"
    amplitude_oracle: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.amplitude_method not in {"hybrid", "sigma", "oracle"}:
            raise DecodingError(
                f"unknown amplitude_method {self.amplitude_method!r}; "
                "expected 'hybrid', 'sigma' or 'oracle'"
            )
        if self.amplitude_method == "oracle" and self.amplitude_oracle is None:
            raise DecodingError("amplitude_method='oracle' requires amplitude_oracle")


@dataclass
class DecodeDiagnostics:
    """Per-decode diagnostics useful for experiments and debugging."""

    amplitude_estimate: Optional[AmplitudeEstimate] = None
    overlap_samples: int = 0
    interfered_bits: int = 0
    clean_bits: int = 0
    mean_match_error: float = 0.0
    reversed_decode: bool = False


class InterferenceDecoder:
    """Decode the unknown half of a two-packet collision.

    Parameters
    ----------
    config:
        Decoder tunables (:class:`DecoderConfig`); defaults apply when
        omitted.
    backend:
        Compute backend for the batched kernels — a registry name, an
        already-resolved :class:`~repro.backend.Backend`, or ``None`` to
        resolve the ambient backend (:func:`repro.backend.use_backend`
        scope, else ``numpy``) at each :meth:`decode_batch` call.  The
        scalar :meth:`decode` path is the fixed reference implementation
        and never changes with the backend.
    """

    def __init__(
        self,
        config: Optional[DecoderConfig] = None,
        backend: Union[None, str, Backend] = None,
    ) -> None:
        self.config = config if config is not None else DecoderConfig()
        self.backend = backend

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def decode(
        self,
        received: ComplexSignal,
        known_bits,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
    ) -> Tuple[np.ndarray, DecodeDiagnostics]:
        """Decode the unknown packet's bits out of the composite waveform.

        Parameters
        ----------
        received:
            The composite received waveform (forward time order).
        known_bits:
            The full frame bits of the packet the receiver already knows.
        known_offset:
            Sample index (within ``received``) of the known frame's
            reference sample.
        unknown_offset:
            Sample index of the unknown frame's reference sample.
        unknown_n_bits:
            Number of bits to decode for the unknown frame.

        Returns
        -------
        (bits, diagnostics)
            The decoded unknown frame bits, in forward order, plus
            diagnostics.  The decoder automatically runs backwards when the
            known frame starts after the unknown one.
        """
        known = ensure_bit_array(known_bits, "known_bits")
        if unknown_n_bits <= 0:
            raise DecodingError("unknown_n_bits must be positive")
        if known_offset < 0 or unknown_offset < 0:
            raise DecodingError("frame offsets must be non-negative")
        if known_offset <= unknown_offset:
            return self._decode_forward(
                received, known, known_offset, unknown_offset, unknown_n_bits
            )
        return self._decode_backward(
            received, known, known_offset, unknown_offset, unknown_n_bits
        )

    def decode_batch(
        self,
        received: BatchLike,
        known_bits,
        known_offsets,
        unknown_offsets,
        unknown_n_bits: int,
    ) -> Tuple[np.ndarray, List[DecodeDiagnostics]]:
        """Decode a whole batch of two-packet collisions at once.

        The batched fast path of :meth:`decode`: trials sharing a collision
        geometry (the same offset pair, hence the same interfered/clean
        interval partition and decode direction) are vectorized together —
        Lemma 6.1 phase solutions, Eq. 7-8 matching and clean-interval
        slicing all run as single 2D numpy operations over the trial axis,
        while the Eq. 5-6 amplitude estimation runs through the scalar
        reference helpers per trial.  Row ``i`` of the output is
        **bit-identical** to ``decode(received.row(i), ...)`` with trial
        ``i``'s arguments (enforced by
        ``tests/properties/test_batch_equivalence.py``).

        Parameters
        ----------
        received:
            Composite received waveforms, a
            :class:`~repro.signal.batch.SignalBatch` or a 2D
            ``(n_trials, n_samples)`` complex array (forward time order).
        known_bits:
            One known frame's bits per trial, shape
            ``(n_trials, n_known_bits)``.
        known_offsets / unknown_offsets:
            Sample index of each frame's reference sample, either one int
            shared by the whole batch or one int per trial.
        unknown_n_bits:
            Number of bits to decode for every unknown frame.

        Returns
        -------
        (bits, diagnostics)
            Decoded unknown-frame bits, shape
            ``(n_trials, unknown_n_bits)``, in forward order, plus one
            :class:`DecodeDiagnostics` per trial.
        """
        samples = ensure_batch_array(received, "received")
        known = ensure_bit_matrix(known_bits, "known_bits")
        n_trials = samples.shape[0]
        if known.shape[0] != n_trials:
            raise DecodingError(
                f"known_bits has {known.shape[0]} rows for {n_trials} received waveforms"
            )
        if unknown_n_bits <= 0:
            raise DecodingError("unknown_n_bits must be positive")
        known_offset_arr = self._offset_column(known_offsets, n_trials, "known_offsets")
        unknown_offset_arr = self._offset_column(unknown_offsets, n_trials, "unknown_offsets")
        backend = resolve_backend(self.backend)

        bits = np.zeros((n_trials, unknown_n_bits), dtype=np.uint8)
        diagnostics: List[Optional[DecodeDiagnostics]] = [None] * n_trials
        geometries = sorted(set(zip(known_offset_arr.tolist(), unknown_offset_arr.tolist())))
        for known_offset, unknown_offset in geometries:
            group = np.flatnonzero(
                (known_offset_arr == known_offset) & (unknown_offset_arr == unknown_offset)
            )
            if known_offset <= unknown_offset:
                group_bits, group_diagnostics = self._decode_forward_batch(
                    samples[group],
                    known[group],
                    known_offset,
                    unknown_offset,
                    unknown_n_bits,
                    backend=backend,
                )
            else:
                group_bits, group_diagnostics = self._decode_backward_batch(
                    samples[group],
                    known[group],
                    known_offset,
                    unknown_offset,
                    unknown_n_bits,
                    backend=backend,
                )
            bits[group] = group_bits
            for position, trial in enumerate(group):
                diagnostics[trial] = group_diagnostics[position]
        return bits, diagnostics

    @staticmethod
    def _offset_column(offsets, n_trials: int, name: str) -> np.ndarray:
        """Broadcast/validate a scalar-or-per-trial offset argument."""
        arr = np.asarray(offsets)
        if not np.issubdtype(arr.dtype, np.integer):
            raise DecodingError(f"{name} must be integers")
        if arr.ndim == 0:
            arr = np.full(n_trials, int(arr))
        if arr.ndim != 1 or arr.size != n_trials:
            raise DecodingError(f"{name} must be one int or one int per trial")
        if np.any(arr < 0):
            raise DecodingError("frame offsets must be non-negative")
        return arr.astype(int)

    # ------------------------------------------------------------------
    # Forward decoding (known packet starts first)
    # ------------------------------------------------------------------
    def _decode_forward(
        self,
        received: ComplexSignal,
        known_bits: np.ndarray,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
        reversed_decode: bool = False,
    ) -> Tuple[np.ndarray, DecodeDiagnostics]:
        samples = received.samples
        known_n_samples = known_bits.size + 1
        known_end = known_offset + known_n_samples
        unknown_end = unknown_offset + unknown_n_bits + 1
        if unknown_end > samples.size:
            raise DecodingError(
                "received waveform is too short for the requested unknown frame"
            )

        diagnostics = DecodeDiagnostics(reversed_decode=reversed_decode)
        amplitude_a, amplitude_b = self._estimate_amplitudes(
            samples, known_offset, known_end, unknown_offset, unknown_end, diagnostics
        )

        known_diffs_full = expected_phase_differences(known_bits)
        bits = np.zeros(unknown_n_bits, dtype=np.uint8)
        match_errors = []

        def known_active(sample_index: int) -> bool:
            return known_offset <= sample_index < known_end

        # Partition the unknown bit indices into maximal runs of
        # "interfered" (both samples of the interval overlap the known
        # frame) and "clean" intervals, and decode each run in one shot.
        interval_interfered = np.zeros(unknown_n_bits, dtype=bool)
        for i in range(unknown_n_bits):
            n = unknown_offset + i
            interval_interfered[i] = known_active(n) and known_active(n + 1)

        i = 0
        while i < unknown_n_bits:
            j = i
            while j < unknown_n_bits and interval_interfered[j] == interval_interfered[i]:
                j += 1
            first_sample = unknown_offset + i
            last_sample = unknown_offset + j  # inclusive end sample of the run
            block = samples[first_sample : last_sample + 1]
            if interval_interfered[i]:
                known_indices = np.arange(first_sample, last_sample) - known_offset
                known_diffs = known_diffs_full[known_indices]
                solutions = phase_solutions(block, amplitude_a, amplitude_b)
                result = match_phase_differences(solutions, known_diffs)
                bits[i:j] = result.bits
                match_errors.append(result.match_errors)
                diagnostics.interfered_bits += j - i
            else:
                ratio = block[1:] * np.conj(block[:-1])
                bits[i:j] = (np.angle(ratio) >= 0).astype(np.uint8)
                diagnostics.clean_bits += j - i
            i = j

        if match_errors:
            diagnostics.mean_match_error = float(np.mean(np.concatenate(match_errors)))
        return bits, diagnostics

    # ------------------------------------------------------------------
    # Backward decoding (known packet starts second, §7.4)
    # ------------------------------------------------------------------
    def _decode_backward(
        self,
        received: ComplexSignal,
        known_bits: np.ndarray,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
    ) -> Tuple[np.ndarray, DecodeDiagnostics]:
        samples = received.samples
        total = samples.size
        reversed_signal = ComplexSignal(samples[::-1])
        known_n_samples = known_bits.size + 1
        unknown_n_samples = unknown_n_bits + 1
        # In the reversed stream, a frame that occupied samples
        # [offset, offset + n) now occupies [total - offset - n, total - offset).
        rev_known_offset = total - known_offset - known_n_samples
        rev_unknown_offset = total - unknown_offset - unknown_n_samples
        if rev_known_offset < 0 or rev_unknown_offset < 0:
            raise DecodingError("frame extends beyond the received waveform")
        # Reversing time reverses the bit order and negates every phase
        # difference; for MSK that is exactly a bit flip.
        rev_known_bits = (1 - known_bits[::-1]).astype(np.uint8)
        rev_bits, diagnostics = self._decode_forward(
            reversed_signal,
            rev_known_bits,
            rev_known_offset,
            rev_unknown_offset,
            unknown_n_bits,
            reversed_decode=True,
        )
        forward_bits = (1 - rev_bits[::-1]).astype(np.uint8)
        return forward_bits, diagnostics

    # ------------------------------------------------------------------
    # Batched decoding (one geometry group at a time)
    # ------------------------------------------------------------------
    def _decode_forward_batch(
        self,
        samples: np.ndarray,
        known_bits: np.ndarray,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
        reversed_decode: bool = False,
        backend: Optional[Backend] = None,
    ) -> Tuple[np.ndarray, List[DecodeDiagnostics]]:
        """Vectorized :meth:`_decode_forward` over trials sharing a geometry.

        ``samples`` is the group's ``(n_trials, n_samples)`` block and
        ``known_bits`` its ``(n_trials, n_known_bits)`` rows.  The
        interval partition is geometry-only, so every trial shares the
        same interfered/clean runs; each run is decoded for all trials in
        one batched kernel call through ``backend`` (the resolved compute
        backend; ``None`` resolves the ambient one).  Amplitudes come
        from the scalar estimator per trial, which keeps them
        bit-identical by construction whatever the backend.
        """
        if backend is None:
            backend = resolve_backend(self.backend)
        n_trials = samples.shape[0]
        known_n_samples = known_bits.shape[1] + 1
        known_end = known_offset + known_n_samples
        unknown_end = unknown_offset + unknown_n_bits + 1
        if unknown_end > samples.shape[1]:
            raise DecodingError(
                "received waveform is too short for the requested unknown frame"
            )

        diagnostics = [
            DecodeDiagnostics(reversed_decode=reversed_decode) for _ in range(n_trials)
        ]
        amplitudes_a, amplitudes_b = self._estimate_amplitudes_group(
            samples, known_offset, known_end, unknown_offset, unknown_end, diagnostics
        )

        known_diffs_full = batch_expected_phase_differences(known_bits)
        bits = np.zeros((n_trials, unknown_n_bits), dtype=np.uint8)
        match_errors: List[np.ndarray] = []

        # Same maximal-run partition as the scalar path; it depends only
        # on the (shared) geometry, never on the per-trial samples.
        interval_indices = unknown_offset + np.arange(unknown_n_bits)
        interval_interfered = (
            (interval_indices >= known_offset)
            & (interval_indices + 1 >= known_offset)
            & (interval_indices < known_end)
            & (interval_indices + 1 < known_end)
        )

        i = 0
        while i < unknown_n_bits:
            j = i
            while j < unknown_n_bits and interval_interfered[j] == interval_interfered[i]:
                j += 1
            first_sample = unknown_offset + i
            last_sample = unknown_offset + j  # inclusive end sample of the run
            block = samples[:, first_sample : last_sample + 1]
            if interval_interfered[i]:
                known_indices = np.arange(first_sample, last_sample) - known_offset
                known_diffs = known_diffs_full[:, known_indices]
                solutions = backend.phase_solutions(block, amplitudes_a, amplitudes_b)
                result = backend.match_phase_differences(solutions, known_diffs)
                bits[:, i:j] = result.bits
                match_errors.append(result.match_errors)
                for diagnostic in diagnostics:
                    diagnostic.interfered_bits += j - i
            else:
                bits[:, i:j] = backend.differential_bits(block)
                for diagnostic in diagnostics:
                    diagnostic.clean_bits += j - i
            i = j

        if match_errors:
            # Same concatenate-then-mean the scalar path performs per trial.
            for trial in range(n_trials):
                diagnostics[trial].mean_match_error = float(
                    np.mean(np.concatenate([errors[trial] for errors in match_errors]))
                )
        return bits, diagnostics

    def _decode_backward_batch(
        self,
        samples: np.ndarray,
        known_bits: np.ndarray,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
        backend: Optional[Backend] = None,
    ) -> Tuple[np.ndarray, List[DecodeDiagnostics]]:
        """Vectorized §7.4 backward decoding for one geometry group.

        Identical transformation to the scalar :meth:`_decode_backward` —
        reverse time, flip the known bits, decode forward, un-reverse —
        applied to the whole trial block at once, through ``backend``.
        """
        total = samples.shape[1]
        known_n_samples = known_bits.shape[1] + 1
        unknown_n_samples = unknown_n_bits + 1
        rev_known_offset = total - known_offset - known_n_samples
        rev_unknown_offset = total - unknown_offset - unknown_n_samples
        if rev_known_offset < 0 or rev_unknown_offset < 0:
            raise DecodingError("frame extends beyond the received waveform")
        rev_known_bits = (1 - known_bits[:, ::-1]).astype(np.uint8)
        # Materialize the reversed block contiguously, exactly like the
        # scalar path's ComplexSignal copy: numpy routes strided views
        # through different (scalar-libm) kernels whose last-ULP rounding
        # can differ from the contiguous SIMD path, which would break the
        # bit-identity contract.
        rev_samples = np.ascontiguousarray(samples[:, ::-1])
        rev_bits, diagnostics = self._decode_forward_batch(
            rev_samples,
            rev_known_bits,
            rev_known_offset,
            rev_unknown_offset,
            unknown_n_bits,
            reversed_decode=True,
            backend=backend,
        )
        forward_bits = (1 - rev_bits[:, ::-1]).astype(np.uint8)
        return forward_bits, diagnostics

    def _estimate_amplitudes_group(
        self,
        samples: np.ndarray,
        known_offset: int,
        known_end: int,
        unknown_offset: int,
        unknown_end: int,
        diagnostics: List[DecodeDiagnostics],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-trial ``(A, B)`` estimates for one geometry group, batched.

        Bit-identical to calling :meth:`_estimate_amplitudes` per trial:
        the region means are row-reductions over the same values (numpy
        reduces the last axis of a 2D array row by row, with the same
        pairwise blocking as the 1D case), and the data-dependent Eq. 6
        statistic — whose above-the-mean subset length varies per trial —
        stays a per-trial computation on the shared energy rows.
        """
        n_trials = samples.shape[0]
        overlap_start = max(known_offset, unknown_offset)
        overlap_end = min(known_end, unknown_end)
        overlap_samples = max(0, overlap_end - overlap_start)
        for diagnostic in diagnostics:
            diagnostic.overlap_samples = overlap_samples
        if overlap_samples < 4:
            raise DecodingError(
                "packets overlap by fewer than 4 samples; nothing to decode with ANC"
            )
        if self.config.amplitude_method == "oracle":
            oracle_a, oracle_b = self.config.amplitude_oracle
            return (
                np.full(n_trials, float(oracle_a)),
                np.full(n_trials, float(oracle_b)),
            )

        overlap = samples[:, overlap_start:overlap_end]
        head = samples[:, known_offset:unknown_offset]
        tail = samples[:, known_end:unknown_end]
        head_amplitudes = (
            np.mean(np.abs(head), axis=1)
            if head.shape[1] >= self.config.min_head_samples
            else None
        )
        tail_amplitudes = (
            np.mean(np.abs(tail), axis=1)
            if tail.shape[1] >= self.config.min_head_samples
            else None
        )

        amplitudes_a = np.empty(n_trials, dtype=float)
        amplitudes_b = np.empty(n_trials, dtype=float)
        if self.config.amplitude_method == "hybrid" and (
            head_amplitudes is not None or tail_amplitudes is not None
        ):
            energy = np.abs(overlap) ** 2
            mu_rows = np.mean(energy, axis=1)
            for trial in range(n_trials):
                mu = float(mu_rows[trial])
                if head_amplitudes is not None:
                    amplitude_a = float(head_amplitudes[trial])
                    amplitude_b = float(np.sqrt(max(mu - amplitude_a ** 2, 1e-12)))
                else:
                    amplitude_b = float(tail_amplitudes[trial])
                    amplitude_a = float(np.sqrt(max(mu - amplitude_b ** 2, 1e-12)))
                estimate = AmplitudeEstimate(
                    amplitude_a=amplitude_a,
                    amplitude_b=amplitude_b,
                    mu=mu,
                    sigma=self._sigma_from_energy(energy[trial], mu),
                )
                diagnostics[trial].amplitude_estimate = estimate
                amplitudes_a[trial] = amplitude_a
                amplitudes_b[trial] = amplitude_b
            return amplitudes_a, amplitudes_b

        # "sigma" method, or "hybrid" degraded to it (no clean edges):
        # inherently per-trial (the Eq. 6 statistic is data-dependent).
        for trial in range(n_trials):
            head_amp = (
                float(head_amplitudes[trial]) if head_amplitudes is not None else None
            )
            tail_amp = (
                float(tail_amplitudes[trial]) if tail_amplitudes is not None else None
            )
            amplitudes_a[trial], amplitudes_b[trial] = self._estimate_sigma(
                overlap[trial], head_amp, tail_amp, diagnostics[trial]
            )
        return amplitudes_a, amplitudes_b

    @staticmethod
    def _sigma_from_energy(energy: np.ndarray, mu: float) -> float:
        """Eq. 6 statistic from a precomputed energy row.

        Same arithmetic as :func:`repro.anc.amplitude.sigma_statistic`
        with ``|y|^2`` already materialized (the batch path shares one
        energy array across the mean and sigma statistics).
        """
        above = energy[energy > mu]
        if above.size == 0:
            return mu
        return float(2.0 * np.sum(above) / energy.size)

    # ------------------------------------------------------------------
    # Amplitude estimation
    # ------------------------------------------------------------------
    def _estimate_amplitudes(
        self,
        samples: np.ndarray,
        known_offset: int,
        known_end: int,
        unknown_offset: int,
        unknown_end: int,
        diagnostics: DecodeDiagnostics,
    ) -> Tuple[float, float]:
        overlap_start = max(known_offset, unknown_offset)
        overlap_end = min(known_end, unknown_end)
        diagnostics.overlap_samples = max(0, overlap_end - overlap_start)
        if diagnostics.overlap_samples < 4:
            raise DecodingError(
                "packets overlap by fewer than 4 samples; nothing to decode with ANC"
            )
        if self.config.amplitude_method == "oracle":
            return self.config.amplitude_oracle

        overlap = samples[overlap_start:overlap_end]
        head = samples[known_offset:unknown_offset]
        tail = samples[known_end:unknown_end]
        head_amplitude = (
            float(np.mean(np.abs(head))) if head.size >= self.config.min_head_samples else None
        )
        tail_amplitude = (
            float(np.mean(np.abs(tail))) if tail.size >= self.config.min_head_samples else None
        )

        if self.config.amplitude_method == "hybrid":
            return self._estimate_hybrid(overlap, head_amplitude, tail_amplitude, diagnostics)
        return self._estimate_sigma(overlap, head_amplitude, tail_amplitude, diagnostics)

    def _estimate_hybrid(
        self,
        overlap: np.ndarray,
        head_amplitude: Optional[float],
        tail_amplitude: Optional[float],
        diagnostics: DecodeDiagnostics,
    ) -> Tuple[float, float]:
        """Edge measurement for A, Eq. 5 mean energy for B.

        The interference-free head contains only the known signal, so its
        mean magnitude is a direct measurement of ``A``; the unknown
        amplitude follows from ``mu = A^2 + B^2``.  When only the tail
        (unknown-only) region exists the roles are swapped; with neither,
        the method degrades to the paper's two-statistic estimator.
        """
        mu = mean_energy(overlap)
        if head_amplitude is not None:
            amplitude_a = head_amplitude
            amplitude_b = float(np.sqrt(max(mu - amplitude_a ** 2, 1e-12)))
        elif tail_amplitude is not None:
            amplitude_b = tail_amplitude
            amplitude_a = float(np.sqrt(max(mu - amplitude_b ** 2, 1e-12)))
        else:
            return self._estimate_sigma(overlap, None, None, diagnostics)
        estimate = AmplitudeEstimate(
            amplitude_a=amplitude_a,
            amplitude_b=amplitude_b,
            mu=mu,
            sigma=sigma_statistic(overlap, mu),
        )
        diagnostics.amplitude_estimate = estimate
        return amplitude_a, amplitude_b

    def _estimate_sigma(
        self,
        overlap: np.ndarray,
        head_amplitude: Optional[float],
        tail_amplitude: Optional[float],
        diagnostics: DecodeDiagnostics,
    ) -> Tuple[float, float]:
        """The paper's Eq. 5-6 estimator, with edge hints only for labelling."""
        if head_amplitude is not None:
            estimate = estimate_amplitudes_with_known(overlap, head_amplitude)
        elif tail_amplitude is not None:
            raw = estimate_amplitudes_with_known(overlap, tail_amplitude)
            # The hint matched the unknown signal, so swap the labels.
            estimate = AmplitudeEstimate(
                amplitude_a=raw.amplitude_b,
                amplitude_b=raw.amplitude_a,
                mu=raw.mu,
                sigma=raw.sigma,
            )
        else:
            hint = float(np.sqrt(np.mean(np.abs(overlap) ** 2) / 2.0))
            estimate = estimate_amplitudes_with_known(overlap, hint)
        diagnostics.amplitude_estimate = estimate
        return estimate.amplitude_a, estimate.amplitude_b


#: The paper-facing name of the interference decoder.  ``decode`` is the
#: scalar reference path; ``decode_batch`` is the vectorized fast path.
ANCDecoder = InterferenceDecoder


class SubtractionDecoder:
    """Naive decode-by-subtraction baseline (the §6 strawman).

    The decoder estimates the known signal's complex channel coefficient
    from the interference-free head (least-squares fit of the received head
    against the re-modulated known head), reconstructs the known signal's
    contribution over the whole packet, subtracts it, and runs standard
    differential MSK demodulation on the residue.  With a perfect, constant
    channel this works; any channel drift or estimation error leaves a
    residual that corrupts the weaker signal — which is exactly why the
    paper rejects it in favour of the phase-difference method.
    """

    def __init__(self, min_head_samples: int = 8) -> None:
        self.min_head_samples = int(min_head_samples)

    def decode(
        self,
        received: ComplexSignal,
        known_bits,
        known_offset: int,
        unknown_offset: int,
        unknown_n_bits: int,
        known_amplitude: float = 1.0,
    ) -> np.ndarray:
        """Decode the unknown packet's bits by subtracting the known signal."""
        known = ensure_bit_array(known_bits, "known_bits")
        if known_offset > unknown_offset:
            raise DecodingError(
                "SubtractionDecoder only implements the forward (known-first) case"
            )
        samples = received.samples
        unknown_end = unknown_offset + unknown_n_bits + 1
        if unknown_end > samples.size:
            raise DecodingError("received waveform too short for the unknown frame")

        # Re-modulate the known frame at unit amplitude and zero phase.
        from repro.modulation.msk import MSKModulator

        reference = MSKModulator(amplitude=1.0).modulate(known).samples
        known_end = known_offset + reference.size

        head_length = min(unknown_offset - known_offset, reference.size)
        if head_length < self.min_head_samples:
            raise DecodingError("interference-free head too short to estimate the channel")
        head_rx = samples[known_offset : known_offset + head_length]
        head_ref = reference[:head_length]
        # Least-squares complex gain: h = <rx, ref> / <ref, ref>.
        gain = np.vdot(head_ref, head_rx) / np.vdot(head_ref, head_ref)

        residual = samples.copy()
        residual[known_offset:known_end] -= gain * reference
        block = residual[unknown_offset:unknown_end]
        ratio = block[1:] * np.conj(block[:-1])
        return (np.angle(ratio) >= 0).astype(np.uint8)
