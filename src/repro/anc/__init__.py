"""Analog Network Coding core: decoding interfered MSK signals.

This package implements the paper's primary contribution (§6 and §7):

* :mod:`repro.anc.lemma` — the two-solution phase decomposition of an
  interfered sample (Lemma 6.1),
* :mod:`repro.anc.amplitude` — estimating the two component amplitudes
  ``A`` and ``B`` from the received signal's energy statistics (Eqs. 5-6),
* :mod:`repro.anc.matching` — resolving the per-sample solution ambiguity
  by matching against the known signal's phase differences (Eqs. 7-8),
* :mod:`repro.anc.decoder` — the full interference decoder, forward
  (Alice) and backward (Bob, §7.4),
* :mod:`repro.anc.alignment` — pilot-based alignment of the known signal
  and detection of where the second packet starts (§7.2),
* :mod:`repro.anc.pipeline` — the complete receive chain of Fig. 8 /
  Algorithm 1 (detection, classification, header decode, ANC decode).
"""

from repro.anc.lemma import PhaseSolutions, phase_solutions, interference_cosine
from repro.anc.amplitude import (
    AmplitudeEstimate,
    estimate_amplitudes,
    estimate_amplitudes_with_known,
    mean_energy,
    sigma_statistic,
)
from repro.anc.matching import MatchResult, match_phase_differences
from repro.anc.batch import (
    BatchMatchResult,
    BatchPhaseSolutions,
    batch_differential_bits,
    batch_interference_cosine,
    batch_match_phase_differences,
    batch_phase_solutions,
)
from repro.anc.decoder import (
    ANCDecoder,
    DecoderConfig,
    DecodeDiagnostics,
    InterferenceDecoder,
    SubtractionDecoder,
)
from repro.anc.alignment import (
    AlignmentResult,
    align_known_frame,
    find_interference_start,
    refine_unknown_offset,
)
from repro.anc.pipeline import ReceivePipeline, ReceiveResult, ReceiveOutcome

__all__ = [
    "ANCDecoder",
    "AlignmentResult",
    "AmplitudeEstimate",
    "BatchMatchResult",
    "BatchPhaseSolutions",
    "DecodeDiagnostics",
    "DecoderConfig",
    "InterferenceDecoder",
    "MatchResult",
    "PhaseSolutions",
    "ReceiveOutcome",
    "ReceivePipeline",
    "ReceiveResult",
    "SubtractionDecoder",
    "align_known_frame",
    "batch_differential_bits",
    "batch_interference_cosine",
    "batch_match_phase_differences",
    "batch_phase_solutions",
    "estimate_amplitudes",
    "estimate_amplitudes_with_known",
    "find_interference_start",
    "interference_cosine",
    "match_phase_differences",
    "mean_energy",
    "phase_solutions",
    "refine_unknown_offset",
    "sigma_statistic",
]
