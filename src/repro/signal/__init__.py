"""Complex-baseband signal substrate.

This package provides the sample-level building blocks the rest of the
library runs on: a :class:`ComplexSignal` container, energy / variance
detectors (the §7.1 packet and interference detectors), additive noise
generation, and sample-delay / superposition operations that model what
the wireless channel does to concurrent transmissions.
"""

from repro.signal.samples import ComplexSignal
from repro.signal.batch import SignalBatch, ensure_batch_array
from repro.signal.energy import (
    EnergyDetector,
    InterferenceDetector,
    average_power,
    energy_variance,
    peak_power,
)
from repro.signal.noise import awgn, complex_gaussian_noise, noise_power_for_snr
from repro.signal.ops import (
    add_signals,
    delay_signal,
    normalize_power,
    overlap_add,
    scale_to_power,
)

__all__ = [
    "ComplexSignal",
    "EnergyDetector",
    "InterferenceDetector",
    "SignalBatch",
    "add_signals",
    "average_power",
    "awgn",
    "complex_gaussian_noise",
    "delay_signal",
    "energy_variance",
    "ensure_batch_array",
    "noise_power_for_snr",
    "normalize_power",
    "overlap_add",
    "peak_power",
    "scale_to_power",
]
