"""Batched complex-baseband signals: the 2D ``(n_trials, n_samples)`` layout.

The scalar substrate (:class:`~repro.signal.samples.ComplexSignal`) models
one waveform at a time, which is the natural unit for the protocol
simulators but forces the Monte-Carlo sweeps to cross the Python/numpy
boundary once per trial.  A :class:`SignalBatch` stacks many equal-length
waveforms into one two-dimensional complex array so that the whole trial
axis is processed by single vectorized numpy calls — the batched MSK
modulator (:mod:`repro.modulation.batch`) and the batched interference
decoder (:mod:`repro.anc.batch`) both operate on this layout.

Row ``i`` of a batch is sample-for-sample one scalar waveform; every
batched kernel in this library is differentially tested to be
*bit-identical* to mapping the scalar reference implementation over the
rows (see ``tests/properties/test_batch_equivalence.py`` and
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.signal.samples import ComplexSignal

#: Inputs accepted wherever a batch is expected: an existing batch or any
#: 2D array-like of complex samples.
BatchLike = Union["SignalBatch", np.ndarray, Sequence[Sequence[complex]]]


def ensure_batch_array(
    samples: BatchLike, name: str = "samples", dtype: np.dtype = np.complex128
) -> np.ndarray:
    """Coerce ``samples`` to a contiguous 2D complex array of ``dtype``.

    Accepts a :class:`SignalBatch` (returned as-is when already of the
    requested dtype, which is the no-copy fast path for the default
    ``complex128``) or anything :func:`numpy.asarray` turns into a 2D
    complex array.  Reduced-precision compute backends pass
    ``dtype=np.complex64`` to get their working copy in one coercion.
    """
    dtype = np.dtype(dtype)
    if isinstance(samples, SignalBatch):
        arr = samples.samples
        if arr.dtype == dtype:
            return arr
        return np.ascontiguousarray(arr, dtype=dtype)
    arr = np.asarray(samples, dtype=dtype)
    if arr.ndim != 2:
        raise ConfigurationError(
            f"{name} must be a 2D (n_trials, n_samples) array, got ndim={arr.ndim}"
        )
    # C-contiguity is part of the bit-exactness contract: numpy's strided
    # ufunc paths may round differently (last ULP) from the contiguous
    # SIMD paths the scalar reference code always sees.
    return np.ascontiguousarray(arr)


@dataclass(frozen=True)
class SignalBatch:
    """An immutable stack of equal-length complex baseband waveforms.

    Parameters
    ----------
    samples:
        Two-dimensional ``(n_trials, n_samples)`` array (or nested
        iterable) of complex values.  The array is copied and frozen, so a
        batch can be shared freely without aliasing surprises — the same
        contract :class:`~repro.signal.samples.ComplexSignal` gives for
        one waveform.
    """

    samples: np.ndarray

    def __init__(self, samples: BatchLike) -> None:
        if isinstance(samples, SignalBatch):
            arr = samples.samples.copy()
        else:
            # One copy, C-contiguous: np.array with the default copy
            # semantics both detaches from the caller's memory and
            # satisfies the contiguity contract of ensure_batch_array.
            arr = np.array(samples, dtype=np.complex128, order="C")
            if arr.ndim != 2:
                raise ConfigurationError(
                    f"samples must be a 2D (n_trials, n_samples) array, got ndim={arr.ndim}"
                )
        arr.setflags(write=False)
        object.__setattr__(self, "samples", arr)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_signals(cls, signals: Iterable[ComplexSignal]) -> "SignalBatch":
        """Stack scalar signals of identical length into one batch.

        All signals must have the same number of samples; padding unequal
        waveforms is the caller's decision (use
        :meth:`ComplexSignal.padded` first), because zero-padding is not
        transparent to energy statistics.
        """
        rows = [signal.samples for signal in signals]
        if not rows:
            raise ConfigurationError("cannot build a SignalBatch from zero signals")
        length = rows[0].size
        if any(row.size != length for row in rows):
            raise ConfigurationError(
                "all signals in a batch must have the same length; "
                "pad them explicitly first"
            )
        return cls(np.stack(rows))

    @classmethod
    def silence(cls, n_trials: int, n_samples: int) -> "SignalBatch":
        """A batch of ``n_trials`` all-zero waveforms (idle channels)."""
        if n_trials <= 0 or n_samples < 0:
            raise ConfigurationError(
                "silence batch needs n_trials >= 1 and n_samples >= 0"
            )
        return cls(np.zeros((n_trials, n_samples), dtype=np.complex128))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_trials(self) -> int:
        """Number of stacked waveforms (rows)."""
        return int(self.samples.shape[0])

    @property
    def n_samples(self) -> int:
        """Samples per waveform (columns)."""
        return int(self.samples.shape[1])

    def __len__(self) -> int:
        return self.n_trials

    def __iter__(self) -> Iterator[ComplexSignal]:
        for index in range(self.n_trials):
            yield self.row(index)

    def row(self, index: int) -> ComplexSignal:
        """Row ``index`` as a scalar :class:`ComplexSignal`."""
        return ComplexSignal(self.samples[index])

    @property
    def amplitude(self) -> np.ndarray:
        """Per-sample magnitudes, shape ``(n_trials, n_samples)``."""
        return np.abs(self.samples)

    @property
    def phase(self) -> np.ndarray:
        """Per-sample phases in ``(-pi, pi]``, shape ``(n_trials, n_samples)``."""
        return np.angle(self.samples)

    @property
    def average_power(self) -> np.ndarray:
        """Mean per-sample energy of each row, shape ``(n_trials,)``."""
        if self.n_samples == 0:
            return np.zeros(self.n_trials, dtype=float)
        return np.mean(np.abs(self.samples) ** 2, axis=1)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "SignalBatch":
        """Column slice ``samples[:, start:stop]`` of every waveform."""
        return SignalBatch(self.samples[:, start:stop])

    def scaled(self, factors: Union[complex, np.ndarray]) -> "SignalBatch":
        """Scale every waveform, by one factor or one factor per row."""
        factor_arr = np.asarray(factors)
        if factor_arr.ndim == 1:
            factor_arr = factor_arr[:, None]
        elif factor_arr.ndim not in (0, 2):
            raise ConfigurationError("factors must be scalar, per-row, or 2D")
        return SignalBatch(self.samples * factor_arr)

    def reversed(self) -> "SignalBatch":
        """Time-reverse every waveform (Bob's backward decoding, §7.4)."""
        return SignalBatch(self.samples[:, ::-1])

    def __add__(self, other: "SignalBatch") -> "SignalBatch":
        """Superpose two batches of identical shape."""
        if not isinstance(other, SignalBatch):
            return NotImplemented
        if self.samples.shape != other.samples.shape:
            raise ConfigurationError(
                "batches must have identical shape to superpose"
            )
        return SignalBatch(self.samples + other.samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SignalBatch(n_trials={self.n_trials}, n_samples={self.n_samples})"
