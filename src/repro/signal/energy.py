"""Energy-based packet detection and variance-based interference detection.

Section 7.1 of the paper:

* a packet is detected when the received energy rises ~20 dB above the
  noise floor, and
* interference is detected when the *variance* of the windowed energy is
  large — a clean MSK signal has (nearly) constant energy because all the
  information lives in the phase, while the sum of two MSK signals swings
  between ``(A+B)^2`` and ``(A-B)^2``.

Both detectors operate over moving windows of received samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.constants import (
    INTERFERENCE_VARIANCE_THRESHOLD_DB,
    PACKET_DETECTION_THRESHOLD_DB,
)
from repro.exceptions import DetectionError
from repro.signal.samples import ComplexSignal
from repro.utils.db import db_to_power_ratio
from repro.utils.validation import ensure_positive, ensure_positive_int
from repro.utils.windows import moving_energy, moving_variance

SignalLike = Union[ComplexSignal, np.ndarray]


def _as_samples(signal: SignalLike) -> np.ndarray:
    if isinstance(signal, ComplexSignal):
        return signal.samples
    return np.asarray(signal, dtype=np.complex128)


def average_power(signal: SignalLike) -> float:
    """Mean per-sample energy of a signal."""
    samples = _as_samples(signal)
    if samples.size == 0:
        return 0.0
    return float(np.mean(np.abs(samples) ** 2))


def peak_power(signal: SignalLike) -> float:
    """Maximum per-sample energy of a signal."""
    samples = _as_samples(signal)
    if samples.size == 0:
        return 0.0
    return float(np.max(np.abs(samples) ** 2))


def energy_variance(signal: SignalLike) -> float:
    """Variance of per-sample energy — near zero for clean constant-envelope MSK."""
    samples = _as_samples(signal)
    if samples.size == 0:
        return 0.0
    return float(np.var(np.abs(samples) ** 2))


@dataclass(frozen=True)
class PacketDetection:
    """Result of running the energy detector over a received stream."""

    detected: bool
    start_index: Optional[int]
    end_index: Optional[int]

    @property
    def length(self) -> int:
        """Number of samples between start and end (0 if nothing detected)."""
        if not self.detected or self.start_index is None or self.end_index is None:
            return 0
        return self.end_index - self.start_index


class EnergyDetector:
    """Detects the presence and extent of a packet in a sample stream.

    Parameters
    ----------
    noise_power:
        Estimated noise floor (linear power).  In a real radio this comes
        from calibration during idle periods; the simulator knows it
        exactly and nodes are configured with it.
    threshold_db:
        How far above the noise floor the windowed energy must rise for a
        packet to be declared (paper default: 20 dB).
    window:
        Moving-window length in samples.
    """

    def __init__(
        self,
        noise_power: float,
        threshold_db: float = PACKET_DETECTION_THRESHOLD_DB,
        window: int = 16,
    ) -> None:
        self.noise_power = ensure_positive(noise_power, "noise_power")
        self.threshold_db = float(threshold_db)
        self.window = ensure_positive_int(window, "window")

    @property
    def threshold_power(self) -> float:
        """Linear energy level above which a packet is declared."""
        return self.noise_power * db_to_power_ratio(self.threshold_db)

    def detect(self, signal: SignalLike) -> PacketDetection:
        """Find the first contiguous region whose windowed energy exceeds the threshold."""
        samples = _as_samples(signal)
        if samples.size == 0:
            raise DetectionError("cannot run packet detection on an empty signal")
        energy = moving_energy(samples, self.window)
        above = energy > self.threshold_power
        if not np.any(above):
            return PacketDetection(detected=False, start_index=None, end_index=None)
        indices = np.nonzero(above)[0]
        start = int(indices[0])
        # End of the packet: the last index of the first contiguous run of
        # "above" samples, extended through short dips (the window already
        # smooths most dips out).
        gaps = np.nonzero(np.diff(indices) > self.window)[0]
        if gaps.size:
            end = int(indices[gaps[0]]) + 1
        else:
            end = int(indices[-1]) + 1
        # Compensate for the trailing-window ramp-up: the packet actually
        # starts up to (window - 1) samples before the detection index.
        start = max(0, start - (self.window - 1))
        return PacketDetection(detected=True, start_index=start, end_index=end)

    def is_busy(self, signal: SignalLike) -> bool:
        """Carrier-sense style check: does the stream contain any packet energy?"""
        return self.detect(signal).detected


class InterferenceDetector:
    """Detects whether a received packet contains a collision (§7.1).

    The detector measures the variance of the windowed energy relative to
    the mean energy.  A clean MSK packet has an almost flat energy profile,
    so its normalised variance is tiny; two superposed MSK packets beat
    against each other and produce a variance comparable to the signal
    energy itself.  The paper states the variance threshold as 20 dB; we
    interpret it as "the energy variance, expressed in dB relative to the
    noise power, exceeds the threshold", which reproduces the intended
    behaviour of triggering only on genuine collisions.
    """

    def __init__(
        self,
        noise_power: float,
        threshold_db: float = INTERFERENCE_VARIANCE_THRESHOLD_DB,
        window: int = 16,
    ) -> None:
        self.noise_power = ensure_positive(noise_power, "noise_power")
        self.threshold_db = float(threshold_db)
        self.window = ensure_positive_int(window, "window")

    @property
    def threshold_variance(self) -> float:
        """Linear variance level above which interference is declared."""
        return self.noise_power * db_to_power_ratio(self.threshold_db)

    def detect(self, signal: SignalLike) -> bool:
        """Return ``True`` if the packet region shows collision-level energy variance."""
        samples = _as_samples(signal)
        if samples.size == 0:
            raise DetectionError("cannot run interference detection on an empty signal")
        energy = np.abs(samples) ** 2
        variance = moving_variance(energy, self.window)
        return bool(np.max(variance) > self.threshold_variance)

    def interference_metric(self, signal: SignalLike) -> float:
        """Peak windowed energy variance, normalised by the noise power.

        Exposed for diagnostics and the ablation benchmarks; values far
        above ``db_to_power_ratio(threshold_db)`` indicate a collision.
        """
        samples = _as_samples(signal)
        if samples.size == 0:
            raise DetectionError("cannot compute interference metric of an empty signal")
        energy = np.abs(samples) ** 2
        variance = moving_variance(energy, self.window)
        return float(np.max(variance) / self.noise_power)
