"""Additive white Gaussian noise generation.

The capacity analysis (§8) and the simulator both model the receiver noise
as circularly-symmetric complex Gaussian noise.  ``noise_power`` throughout
the library refers to the *total* complex noise power ``E[|z|^2]``, i.e.
each of the real and imaginary components has variance ``noise_power / 2``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import ChannelError
from repro.signal.samples import ComplexSignal
from repro.utils.db import db_to_power_ratio

SignalLike = Union[ComplexSignal, np.ndarray]


def complex_gaussian_noise(
    length: int,
    noise_power: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Generate ``length`` samples of complex AWGN with total power ``noise_power``."""
    if length < 0:
        raise ChannelError("noise length must be non-negative")
    if noise_power < 0:
        raise ChannelError("noise power must be non-negative")
    if noise_power == 0 or length == 0:
        return np.zeros(length, dtype=np.complex128)
    generator = rng if rng is not None else np.random.default_rng()
    sigma = np.sqrt(noise_power / 2.0)
    return generator.normal(0.0, sigma, length) + 1j * generator.normal(0.0, sigma, length)


def awgn(
    signal: SignalLike,
    noise_power: float,
    rng: Optional[np.random.Generator] = None,
) -> ComplexSignal:
    """Add complex AWGN of the given power to a signal."""
    samples = signal.samples if isinstance(signal, ComplexSignal) else np.asarray(signal)
    noisy = samples + complex_gaussian_noise(samples.size, noise_power, rng)
    return ComplexSignal(noisy)


def noise_power_for_snr(signal_power: float, snr_db: float) -> float:
    """Noise power that yields the requested SNR for a given signal power."""
    if signal_power <= 0:
        raise ChannelError("signal power must be positive")
    return signal_power / db_to_power_ratio(snr_db)
