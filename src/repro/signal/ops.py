"""Structural signal operations: delay, superposition, power scaling.

These are the primitives the wireless medium model composes: each
transmitter's waveform is delayed by its start offset, attenuated and
phase-rotated by its link, then all concurrent waveforms are summed at the
receiver (``overlap_add``), and finally noise is added.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ChannelError
from repro.signal.samples import ComplexSignal

SignalLike = Union[ComplexSignal, np.ndarray]


def _as_samples(signal: SignalLike) -> np.ndarray:
    if isinstance(signal, ComplexSignal):
        return signal.samples
    return np.asarray(signal, dtype=np.complex128)


def delay_signal(
    signal: SignalLike, delay: int, total_length: Optional[int] = None
) -> ComplexSignal:
    """Shift a signal later in time by ``delay`` zero samples.

    Parameters
    ----------
    signal:
        The waveform to delay.
    delay:
        Non-negative integer number of samples of silence to prepend.
    total_length:
        If given, the result is zero-padded or truncated to exactly this
        many samples, which is how the medium model lines all concurrent
        transmissions up on a common time axis.
    """
    if delay < 0:
        raise ChannelError("delay must be non-negative")
    samples = _as_samples(signal)
    delayed = np.concatenate([np.zeros(delay, dtype=np.complex128), samples])
    if total_length is not None:
        if total_length < 0:
            raise ChannelError("total_length must be non-negative")
        if delayed.size < total_length:
            delayed = np.concatenate(
                [delayed, np.zeros(total_length - delayed.size, dtype=np.complex128)]
            )
        else:
            delayed = delayed[:total_length]
    return ComplexSignal(delayed)


def add_signals(signals: Iterable[SignalLike]) -> ComplexSignal:
    """Superpose equal-length signals (the channel's additive mixing)."""
    arrays = [_as_samples(s) for s in signals]
    if not arrays:
        raise ChannelError("at least one signal is required")
    length = arrays[0].size
    for arr in arrays[1:]:
        if arr.size != length:
            raise ChannelError("all signals must have the same length; use overlap_add")
    return ComplexSignal(np.sum(arrays, axis=0))


def overlap_add(
    components: Sequence[Tuple[SignalLike, int]], total_length: Optional[int] = None
) -> ComplexSignal:
    """Sum signals that start at different sample offsets.

    Parameters
    ----------
    components:
        Sequence of ``(signal, start_offset)`` pairs.  Offsets must be
        non-negative.
    total_length:
        Length of the resulting composite; defaults to the smallest length
        that contains every component.

    Returns
    -------
    ComplexSignal
        The superposition, with silence wherever no component is active.
    """
    if not components:
        raise ChannelError("at least one component is required")
    arrays = []
    offsets = []
    for signal, offset in components:
        if offset < 0:
            raise ChannelError("component offsets must be non-negative")
        arrays.append(_as_samples(signal))
        offsets.append(int(offset))
    natural_length = max(arr.size + off for arr, off in zip(arrays, offsets))
    length = natural_length if total_length is None else int(total_length)
    if length < 0:
        raise ChannelError("total_length must be non-negative")
    out = np.zeros(length, dtype=np.complex128)
    for arr, off in zip(arrays, offsets):
        if off >= length:
            continue
        end = min(off + arr.size, length)
        out[off:end] += arr[: end - off]
    return ComplexSignal(out)


def scale_to_power(signal: SignalLike, target_power: float) -> ComplexSignal:
    """Scale a signal so its average per-sample power equals ``target_power``.

    This is what the amplify-and-forward relay does: it re-amplifies the
    received (interfered, noisy) waveform back up to its own transmit power
    budget before rebroadcasting it (§7.5, §8).
    """
    if target_power < 0:
        raise ChannelError("target power must be non-negative")
    samples = _as_samples(signal)
    current = float(np.mean(np.abs(samples) ** 2)) if samples.size else 0.0
    if current == 0.0:
        if target_power == 0.0:
            return ComplexSignal(samples)
        raise ChannelError("cannot scale an all-zero signal to non-zero power")
    factor = np.sqrt(target_power / current)
    return ComplexSignal(samples * factor)


def normalize_power(signal: SignalLike) -> ComplexSignal:
    """Scale a signal to unit average power."""
    return scale_to_power(signal, 1.0)
