"""The :class:`ComplexSignal` container.

A wireless signal in this library is a finite stream of complex baseband
samples, exactly as the paper describes (§5.1: "we will talk about complex
samples, of the form ``A_s[n] e^{i theta_s[n]}``").  The container wraps a
``numpy`` array and offers the handful of derived quantities (amplitude,
phase, phase differences, energy) that the modulation and ANC layers keep
recomputing, plus simple slicing and concatenation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.angles import phase_difference
from repro.utils.validation import ensure_complex_array


@dataclass(frozen=True)
class ComplexSignal:
    """An immutable sequence of complex baseband samples.

    Parameters
    ----------
    samples:
        One-dimensional array (or iterable) of complex values.  The array
        is copied and frozen, so a ``ComplexSignal`` can be shared freely
        between nodes without aliasing surprises.
    """

    samples: np.ndarray

    def __init__(self, samples: Union[np.ndarray, Iterable[complex]]) -> None:
        arr = ensure_complex_array(samples, "samples")
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "samples", arr)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "ComplexSignal":
        """A signal with no samples."""
        return cls(np.zeros(0, dtype=np.complex128))

    @classmethod
    def silence(cls, length: int) -> "ComplexSignal":
        """A signal of ``length`` zero samples (idle channel)."""
        if length < 0:
            raise ConfigurationError("silence length must be non-negative")
        return cls(np.zeros(length, dtype=np.complex128))

    @classmethod
    def from_polar(cls, amplitude, phase) -> "ComplexSignal":
        """Build a signal from per-sample amplitude and phase arrays."""
        amp = np.asarray(amplitude, dtype=float)
        ph = np.asarray(phase, dtype=float)
        if amp.ndim == 0:
            amp = np.full(ph.shape, float(amp))
        if amp.shape != ph.shape:
            raise ConfigurationError("amplitude and phase must have the same shape")
        return cls(amp * np.exp(1j * ph))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.samples.size)

    @property
    def amplitude(self) -> np.ndarray:
        """Per-sample magnitude ``|s[n]|``."""
        return np.abs(self.samples)

    @property
    def phase(self) -> np.ndarray:
        """Per-sample phase ``arg(s[n])`` in ``(-pi, pi]``."""
        return np.angle(self.samples)

    @property
    def energy(self) -> np.ndarray:
        """Per-sample energy ``|s[n]|^2``."""
        return np.abs(self.samples) ** 2

    @property
    def total_energy(self) -> float:
        """Sum of per-sample energies."""
        return float(np.sum(self.energy))

    @property
    def average_power(self) -> float:
        """Mean per-sample energy (zero for an empty signal)."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self.energy))

    def phase_differences(self) -> np.ndarray:
        """Wrapped phase difference between consecutive samples.

        For an MSK signal these are exactly the ±pi/2 steps that carry the
        bits; for an interfered signal they are what the ANC decoder has to
        untangle.
        """
        ph = self.phase
        if ph.size < 2:
            return np.zeros(0, dtype=float)
        return phase_difference(ph[1:], ph[:-1])

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "ComplexSignal":
        """Return the sub-signal ``samples[start:stop]``."""
        return ComplexSignal(self.samples[start:stop])

    def concatenate(self, other: "ComplexSignal") -> "ComplexSignal":
        """Append ``other`` after this signal."""
        return ComplexSignal(np.concatenate([self.samples, other.samples]))

    def reversed(self) -> "ComplexSignal":
        """Time-reversed copy (used by Bob's backward decoding, §7.4)."""
        return ComplexSignal(self.samples[::-1])

    def padded(self, before: int, after: int) -> "ComplexSignal":
        """Return a copy with zero samples prepended and appended."""
        if before < 0 or after < 0:
            raise ConfigurationError("padding lengths must be non-negative")
        return ComplexSignal(
            np.concatenate(
                [
                    np.zeros(before, dtype=np.complex128),
                    self.samples,
                    np.zeros(after, dtype=np.complex128),
                ]
            )
        )

    def scaled(self, factor: complex) -> "ComplexSignal":
        """Multiply every sample by ``factor`` (attenuation and/or phase shift)."""
        return ComplexSignal(self.samples * factor)

    def __add__(self, other: "ComplexSignal") -> "ComplexSignal":
        """Superpose two signals of identical length (what the channel does)."""
        if not isinstance(other, ComplexSignal):
            return NotImplemented
        if len(self) != len(other):
            raise ConfigurationError(
                "signals must have equal length to superpose; use overlap_add for offsets"
            )
        return ComplexSignal(self.samples + other.samples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComplexSignal):
            return NotImplemented
        return len(self) == len(other) and bool(np.allclose(self.samples, other.samples))

    def isclose(self, other: "ComplexSignal", tol: float = 1e-9) -> bool:
        """Approximate equality with an explicit tolerance."""
        return len(self) == len(other) and bool(
            np.allclose(self.samples, other.samples, atol=tol)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComplexSignal(n={len(self)}, power={self.average_power:.4g})"
