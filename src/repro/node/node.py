"""The basic wireless node.

A node bundles everything one radio needs:

* a :class:`~repro.framing.frame.Framer` and MSK modulator for the
  transmit path (Fig. 8, left),
* a :class:`~repro.framing.buffer.SentPacketBuffer` holding copies of the
  frames it transmitted or overheard — the network-layer side information
  ANC exploits,
* a :class:`~repro.anc.pipeline.ReceivePipeline` for the receive path
  (Fig. 8, right), sharing that buffer.

The node is deliberately passive: *when* it transmits is decided by the
protocol / scheduler driving the simulation, mirroring how the paper
separates the signal processing from the (optimal) MAC used in the
evaluation (§11.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.anc.decoder import DecoderConfig
from repro.anc.pipeline import ReceivePipeline, ReceiveResult
from repro.constants import DEFAULT_TX_AMPLITUDE
from repro.exceptions import ConfigurationError
from repro.framing.buffer import SentPacketBuffer
from repro.framing.frame import Frame, Framer
from repro.framing.packet import Packet
from repro.framing.pilot import PilotSequence
from repro.modulation.msk import MSKModulator
from repro.signal.samples import ComplexSignal


@dataclass(frozen=True)
class NodeConfig:
    """Static configuration of a node's radio and protocol parameters."""

    payload_bits: int = 512
    tx_amplitude: float = DEFAULT_TX_AMPLITUDE
    noise_power: float = 1e-3
    buffer_capacity: int = 256
    decoder_config: Optional[DecoderConfig] = None

    def __post_init__(self) -> None:
        """Validate the radio parameters."""
        if self.payload_bits <= 0:
            raise ConfigurationError("payload_bits must be positive")
        if self.tx_amplitude <= 0:
            raise ConfigurationError("tx_amplitude must be positive")
        if self.noise_power < 0:
            raise ConfigurationError("noise_power must be non-negative")


class Node:
    """A wireless node with full transmit and receive chains."""

    def __init__(self, node_id: int, config: Optional[NodeConfig] = None) -> None:
        """Build the node's transmit and receive chains from its config."""
        if node_id < 0:
            raise ConfigurationError("node id must be non-negative")
        self.node_id = int(node_id)
        self.config = config if config is not None else NodeConfig()
        self.pilot = PilotSequence()
        self.framer = Framer(pilot=self.pilot)
        self.modulator = MSKModulator(amplitude=self.config.tx_amplitude)
        self.known_frames = SentPacketBuffer(capacity=self.config.buffer_capacity)
        self.pipeline = ReceivePipeline(
            noise_power=self.config.noise_power,
            expected_payload_bits=self.config.payload_bits,
            known_frames=self.known_frames,
            decoder_config=self.config.decoder_config,
            pilot=self.pilot,
            framer=self.framer,
        )
        self._sequence_counter = 0
        #: Packets this node has successfully received, keyed by identity.
        self.delivered: Dict[tuple, Packet] = {}

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def next_sequence(self) -> int:
        """Allocate the next per-node sequence number."""
        value = self._sequence_counter
        self._sequence_counter += 1
        return value

    def make_packet(self, destination: int, rng: Optional[np.random.Generator] = None) -> Packet:
        """Create a new random-payload packet addressed to ``destination``."""
        return Packet.random(
            source=self.node_id,
            destination=destination,
            sequence=self.next_sequence(),
            payload_bits=self.config.payload_bits,
            rng=rng,
        )

    def build_frame(self, packet: Packet) -> Frame:
        """Frame a packet and remember it for future interference cancellation."""
        frame = self.framer.build(packet)
        self.known_frames.store(frame)
        return frame

    def modulate(self, frame: Frame) -> ComplexSignal:
        """Produce the transmit waveform for a frame."""
        return self.modulator.modulate(frame.bits)

    def transmit(self, packet: Packet) -> ComplexSignal:
        """Frame, remember and modulate a packet in one step."""
        return self.modulate(self.build_frame(packet))

    def forward(self, packet: Packet) -> ComplexSignal:
        """Re-frame and transmit a packet originated elsewhere (routing).

        The forwarded copy keeps the original addressing fields, so any
        downstream node that overhears or previously saw the packet can
        still identify it; the forwarding node also remembers the frame,
        which is what lets it cancel that frame later (chain topology).
        """
        return self.transmit(packet)

    def overhear(self, frame: Frame) -> None:
        """Store a frame decoded while snooping, for later cancellation (§11.5)."""
        self.known_frames.store(frame)

    def remember_packet(self, packet: Packet) -> Frame:
        """Store the frame of a packet this node knows about without transmitting."""
        frame = self.framer.build(packet)
        self.known_frames.store(frame)
        return frame

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, waveform: ComplexSignal) -> ReceiveResult:
        """Run the full receive pipeline on a waveform heard off the air."""
        result = self.pipeline.receive(waveform)
        if result.delivered and result.packet is not None:
            if result.packet.destination == self.node_id:
                self.delivered[result.packet.identity] = result.packet
        return result

    @property
    def frame_samples(self) -> int:
        """Number of samples every frame of this node occupies on the air."""
        return self.pipeline.frame_samples

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debugging representation."""
        return f"Node(id={self.node_id}, payload_bits={self.config.payload_bits})"
