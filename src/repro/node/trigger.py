"""The trigger protocol (§7.6).

To make the *right* senders interfere, a node appends a short trigger
sequence to its transmission naming the neighbours that should transmit
immediately afterwards.  In the Alice–Bob topology the router triggers
Alice and Bob; in the chain topology N2 triggers N1 and N3.  The triggered
nodes still insert the small random startup delay of §7.2, which is what
produces the partial (~80 %) packet overlap the evaluation measures.

The simulator models the trigger at the scheduling level: a
:class:`Trigger` names the nodes that will transmit concurrently in the
next slot, and :class:`TriggerScheduler` draws their random start offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.channel.interference import OverlapModel
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class Trigger:
    """A request for a set of nodes to transmit concurrently.

    Attributes
    ----------
    issuer:
        The node that appended the trigger sequence to its transmission.
    targets:
        The neighbours being triggered (their next transmission should
        start right after the issuer's ends).
    """

    issuer: int
    targets: Tuple[int, ...]

    def __post_init__(self) -> None:
        """Validate the trigger's target set."""
        if len(self.targets) == 0:
            raise ConfigurationError("a trigger must name at least one target")
        if len(set(self.targets)) != len(self.targets):
            raise ConfigurationError("trigger targets must be unique")
        if self.issuer in self.targets:
            raise ConfigurationError("a node cannot trigger itself")


class TriggerScheduler:
    """Turns a trigger into concrete start offsets for the triggered senders.

    The first responder starts at offset zero; every other responder's
    offset is drawn from the :class:`~repro.channel.interference.OverlapModel`
    so that the expected pairwise overlap matches the configured mean
    (0.8 by default, the paper's measured figure).
    """

    def __init__(
        self,
        overlap_model: Optional[OverlapModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Create a scheduler drawing offsets from ``overlap_model`` / ``rng``."""
        self._rng = rng if rng is not None else np.random.default_rng()
        self.overlap_model = (
            overlap_model if overlap_model is not None else OverlapModel(rng=self._rng)
        )

    def schedule(self, trigger: Trigger, frame_samples: int) -> Dict[int, int]:
        """Assign a start offset (in samples) to every triggered node.

        The order in which targets fire first is randomised, matching the
        paper's observation that either Alice's or Bob's packet may lead.
        """
        if frame_samples <= 0:
            raise ConfigurationError("frame_samples must be positive")
        order = list(trigger.targets)
        self._rng.shuffle(order)
        offsets: Dict[int, int] = {}
        first_offset, second_offset = self.overlap_model.draw_offsets(frame_samples)
        for index, node_id in enumerate(order):
            if index == 0:
                offsets[node_id] = first_offset
            elif index == 1:
                offsets[node_id] = second_offset
            else:
                # More than two concurrent senders: space the extras like
                # the second one (the canonical topologies never need this,
                # but larger meshes might).
                extra, _ = self.overlap_model.draw_offsets(frame_samples)
                offsets[node_id] = second_offset + extra
        return offsets
