"""Amplify-and-forward relay node.

In the Alice–Bob and "X" topologies the router never decodes the collided
waveform; it re-amplifies whatever it received — signal, interference and
noise alike — to its transmit power budget and broadcasts it (§2, §7.5).
That noise amplification is why the paper measures a higher BER for the
Alice–Bob topology than for the chain, where the interfered signal is
decoded directly at the node that first hears it (§11.6).
"""

from __future__ import annotations

from typing import Optional

from repro.channel.relay import AmplifyAndForwardRelayChannel
from repro.node.node import Node, NodeConfig
from repro.signal.samples import ComplexSignal


class RelayNode(Node):
    """A node that can rebroadcast received waveforms at its own power."""

    def __init__(self, node_id: int, config: Optional[NodeConfig] = None) -> None:
        """Create the node plus its amplify-and-forward output stage."""
        super().__init__(node_id, config)
        self._relay_channel = AmplifyAndForwardRelayChannel(
            transmit_power=self.config.tx_amplitude ** 2
        )

    def amplify_and_forward(self, waveform: ComplexSignal) -> ComplexSignal:
        """Rescale a received waveform to this node's transmit power budget.

        The returned waveform (including the relay's received noise) is
        what the relay broadcasts in the next slot.
        """
        return self._relay_channel.apply(waveform)

    @property
    def amplification_channel(self) -> AmplifyAndForwardRelayChannel:
        """The underlying amplify-and-forward stage (exposed for analysis)."""
        return self._relay_channel
