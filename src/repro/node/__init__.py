"""Node abstractions: endpoints, relays and routers.

A :class:`Node` owns the full transmit and receive chains of Fig. 8 — the
framer, modulator, sent-packet buffer and the ANC receive pipeline — and is
the unit the network simulator schedules.  :class:`RelayNode` adds the
amplify-and-forward behaviour of the Alice–Bob / "X" router, and
:class:`RouterNode` adds the decode-vs-amplify-vs-drop decision logic of
§7.5.  The trigger protocol of §7.6 is modelled by
:class:`~repro.node.trigger.TriggerScheduler`.
"""

from repro.node.node import Node, NodeConfig
from repro.node.relay import RelayNode
from repro.node.router import RouterAction, RouterDecision, RouterNode
from repro.node.trigger import Trigger, TriggerScheduler

__all__ = [
    "Node",
    "NodeConfig",
    "RelayNode",
    "RouterAction",
    "RouterDecision",
    "RouterNode",
    "Trigger",
    "TriggerScheduler",
]
