"""Router decision logic for interfered receptions (§7.5).

A forwarding node that captures an interfered waveform has three options:

* **decode** it with the ANC algorithm, if one of the two colliding
  packets is already in its buffer (the chain-topology case, where the
  router forwarded the interfering packet itself one slot earlier);
* **amplify and forward** it, if it knows neither packet but the two
  headers show flows heading in opposite directions through it (the
  Alice–Bob case); or
* **drop** it otherwise.

:class:`RouterNode` implements that decision on top of the ordinary node's
receive pipeline, which already extracts both headers from the
interference-free head and tail of the collision.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.anc.pipeline import ReceiveOutcome, ReceiveResult
from repro.framing.header import Header
from repro.framing.packet import Packet
from repro.node.relay import RelayNode
from repro.signal.samples import ComplexSignal


class RouterAction(enum.Enum):
    """What the router decided to do with a received waveform."""

    DELIVER = "deliver"            # decoded a clean packet addressed onwards
    DECODE = "decode"              # ANC-decoded an interfered packet
    AMPLIFY_FORWARD = "amplify_forward"
    DROP = "drop"


@dataclass
class RouterDecision:
    """The router's decision plus whatever it produced."""

    action: RouterAction
    packet: Optional[Packet] = None
    broadcast: Optional[ComplexSignal] = None
    receive_result: Optional[ReceiveResult] = None
    reason: str = ""


class RouterNode(RelayNode):
    """A relay that applies the §7.5 decision procedure to every reception.

    Parameters
    ----------
    node_id:
        The router's identifier.
    neighbors:
        Identifiers of the router's radio neighbours; used to check the
        "headed in opposite directions to its neighbours" condition for
        amplify-and-forward.
    """

    def __init__(self, node_id: int, neighbors: Iterable[int] = (), config=None) -> None:
        """Create the relay plus the router's view of its neighbourhood."""
        super().__init__(node_id, config)
        self.neighbors: Set[int] = {int(n) for n in neighbors}

    def set_neighbors(self, neighbors: Iterable[int]) -> None:
        """Update the router's view of its radio neighbourhood."""
        self.neighbors = {int(n) for n in neighbors}

    # ------------------------------------------------------------------
    # Decision procedure
    # ------------------------------------------------------------------
    def _opposite_directions(self, first: Header, second: Header) -> bool:
        """Are the two colliding packets crossing this router towards different neighbours?

        The practical check used here: both destinations are (or lead via)
        distinct neighbours of the router, and the packets travel between
        different endpoint pairs — i.e. relaying the mixture lets each
        destination cancel the part it already knows.
        """
        if first.destination == second.destination:
            return False
        first_ok = first.destination in self.neighbors or first.source in self.neighbors
        second_ok = second.destination in self.neighbors or second.source in self.neighbors
        return first_ok and second_ok

    def process(self, waveform: ComplexSignal) -> RouterDecision:
        """Receive a waveform and decide among decode / amplify-forward / drop."""
        result = self.receive(waveform)

        if result.outcome == ReceiveOutcome.CLEAN_DECODED and result.delivered:
            return RouterDecision(
                action=RouterAction.DELIVER,
                packet=result.packet,
                receive_result=result,
                reason="clean packet decoded",
            )

        if result.outcome == ReceiveOutcome.ANC_DECODED:
            return RouterDecision(
                action=RouterAction.DECODE,
                packet=result.packet,
                receive_result=result,
                reason="one colliding packet was known; decoded the other",
            )

        if result.outcome == ReceiveOutcome.NEEDS_RELAY:
            first, second = result.first_header, result.second_header
            if first is not None and second is not None and self._opposite_directions(first, second):
                return RouterDecision(
                    action=RouterAction.AMPLIFY_FORWARD,
                    broadcast=self.amplify_and_forward(waveform),
                    receive_result=result,
                    reason="unknown packets crossing in opposite directions",
                )
            return RouterDecision(
                action=RouterAction.DROP,
                receive_result=result,
                reason="unknown packets not crossing this router",
            )

        return RouterDecision(
            action=RouterAction.DROP,
            receive_result=result,
            reason=result.failure_reason or "nothing decodable",
        )
