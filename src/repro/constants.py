"""Library-wide constants.

These mirror the concrete values used in the paper's implementation
(Sections 5-7 and 11) so that the default configuration of every component
reproduces the published system.
"""

from __future__ import annotations

import math

#: MSK phase increment for a "1" bit (radians per symbol), see Fig. 3 / §5.2.
MSK_PHASE_STEP: float = math.pi / 2.0

#: Number of complex samples per MSK symbol used by the simulator.  The
#: paper reasons about one complex sample per symbol interval ``T`` (§5.1);
#: we keep that as the default but allow oversampling in the modulators.
DEFAULT_SAMPLES_PER_SYMBOL: int = 1

#: Length of the pseudo-random pilot sequence attached to both ends of a
#: frame (§7.2: "The pilot is a 64-bit pseudo-random sequence").
PILOT_LENGTH_BITS: int = 64

#: Default seed for the pilot PN generator.  All nodes must agree on the
#: pilot sequence, so it is a protocol constant rather than per-node state.
PILOT_SEED: int = 0x5EED

#: Default seed for the data-whitening scrambler (§6.2).
SCRAMBLER_SEED: int = 0xACE1

#: Energy threshold (dB above the noise floor) used to declare that a
#: packet is present (§7.1: "declares occurrence of a packet if the energy
#: is greater than 20dB").
PACKET_DETECTION_THRESHOLD_DB: float = 20.0

#: Energy-variance threshold (dB) used to declare interference (§7.1).
INTERFERENCE_VARIANCE_THRESHOLD_DB: float = 20.0

#: Maximum random startup delay, in slots of the trigger protocol
#: (§7.2: "picking a random number between 1 and 32").
MAX_RANDOM_DELAY_SLOTS: int = 32

#: Average fraction of two interfering packets that overlap in the paper's
#: testbed (§11.4: "the average overlap ... is 80%").
DEFAULT_OVERLAP_FRACTION: float = 0.80

#: Extra error-correction redundancy charged against ANC throughput
#: (§11.4: "we have to add 8% of extra redundancy").
DEFAULT_ANC_REDUNDANCY_OVERHEAD: float = 0.08

#: Typical operating SNR (dB) of practical WLAN deployments (§8, citing
#: [11]): "WLANs operate at SNR around 25-40dB".
TYPICAL_OPERATING_SNR_DB: float = 30.0

#: Number of testbed repetitions per experiment in the paper (§11.4:
#: "We repeat the experiment 40 times").
PAPER_NUM_RUNS: int = 40

#: Number of packets transferred per direction per run in the paper.
PAPER_PACKETS_PER_RUN: int = 1000

#: Number of header bits used for each of SrcID, DstID and SeqNo in the
#: Fig. 6 frame layout.  The paper does not give exact field widths; we use
#: 8/8/16 which is sufficient for every topology in the evaluation.
HEADER_SRC_BITS: int = 8
HEADER_DST_BITS: int = 8
HEADER_SEQ_BITS: int = 16

#: Default transmit amplitude of every node (arbitrary linear units).  All
#: nodes transmit at the same power in the paper's analysis (§8).
DEFAULT_TX_AMPLITUDE: float = 1.0
