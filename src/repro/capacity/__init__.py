"""Capacity analysis of the two-way relay channel (§8, Theorem 8.1, Fig. 7).

The paper bounds the Alice–Bob network's capacity under half-duplex
radios: an upper bound for traditional routing and an achievable lower
bound for analog network coding, both as functions of SNR.  The ratio
approaches 2 as SNR grows; below roughly 8 dB the amplified noise makes
ANC worse than routing.
"""

from repro.capacity.bounds import (
    anc_capacity_lower_bound,
    capacity_gain,
    crossover_snr_db,
    traditional_capacity_upper_bound,
)
from repro.capacity.relay import (
    amplification_factor,
    anc_receiver_snr,
    relay_received_snr,
)
from repro.capacity.sweep import CapacityCurve, capacity_sweep

__all__ = [
    "CapacityCurve",
    "amplification_factor",
    "anc_capacity_lower_bound",
    "anc_receiver_snr",
    "capacity_gain",
    "capacity_sweep",
    "crossover_snr_db",
    "relay_received_snr",
    "traditional_capacity_upper_bound",
]
