"""Theorem 8.1: capacity bounds for the half-duplex two-way relay channel.

With all nodes transmitting at the same power over symmetric channels with
additive white Gaussian noise, the paper states:

* an upper bound on the total capacity of the traditional (routing)
  approach::

      C_traditional = alpha * (log(1 + 2 SNR) + log(1 + SNR))

* an achievable lower bound for analog network coding::

      C_anc = 4 alpha * log(1 + SNR^2 / (3 SNR + 1))

where ``alpha`` is the scheduling constant (1/4: each of the four
traditional transmissions gets a quarter of the time).  The ratio of the
two tends to 2 as SNR grows, and drops below 1 in the low-SNR regime
(roughly below 8 dB) where the relay's amplified noise dominates.

Logarithms are base 2, so capacities are in bits/s/Hz.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.exceptions import CapacityError
from repro.utils.db import db_to_power_ratio

ArrayLike = Union[float, np.ndarray]

#: Time-sharing constant of Theorem 8.1 (four transmissions share the medium).
DEFAULT_ALPHA = 0.25


def _validate_snr(snr_linear: ArrayLike) -> np.ndarray:
    arr = np.asarray(snr_linear, dtype=float)
    if np.any(arr < 0):
        raise CapacityError("SNR must be non-negative")
    return arr


def traditional_capacity_upper_bound(
    snr_db: ArrayLike,
    alpha: float = DEFAULT_ALPHA,
) -> ArrayLike:
    """Upper bound on the routing capacity of the Alice–Bob network (b/s/Hz)."""
    if alpha <= 0:
        raise CapacityError("alpha must be positive")
    snr = _validate_snr(db_to_power_ratio(np.asarray(snr_db, dtype=float)))
    capacity = alpha * (np.log2(1.0 + 2.0 * snr) + np.log2(1.0 + snr))
    if np.isscalar(snr_db) or np.ndim(snr_db) == 0:
        return float(capacity)
    return capacity


def anc_capacity_lower_bound(
    snr_db: ArrayLike,
    alpha: float = DEFAULT_ALPHA,
) -> ArrayLike:
    """Achievable lower bound on the ANC capacity of the Alice–Bob network (b/s/Hz)."""
    if alpha <= 0:
        raise CapacityError("alpha must be positive")
    snr = _validate_snr(db_to_power_ratio(np.asarray(snr_db, dtype=float)))
    effective = (snr ** 2) / (3.0 * snr + 1.0)
    capacity = 4.0 * alpha * np.log2(1.0 + effective)
    if np.isscalar(snr_db) or np.ndim(snr_db) == 0:
        return float(capacity)
    return capacity


def capacity_gain(snr_db: ArrayLike, alpha: float = DEFAULT_ALPHA) -> ArrayLike:
    """Ratio of the ANC lower bound to the traditional upper bound.

    Asymptotically approaches 2 as the SNR grows (Theorem 8.1); values
    below 1 indicate the low-SNR regime where amplify-and-forward hurts.
    """
    anc = np.asarray(anc_capacity_lower_bound(snr_db, alpha), dtype=float)
    traditional = np.asarray(traditional_capacity_upper_bound(snr_db, alpha), dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        gain = np.where(traditional > 0, anc / traditional, 0.0)
    if np.isscalar(snr_db) or np.ndim(snr_db) == 0:
        return float(gain)
    return gain


def crossover_snr_db(
    low_db: float = 0.0,
    high_db: float = 30.0,
    resolution_db: float = 0.01,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """SNR (dB) above which the ANC lower bound beats the routing upper bound.

    The paper's Fig. 7 places this crossover at roughly 8 dB; this helper
    locates it numerically on the stated bounds.
    """
    if high_db <= low_db:
        raise CapacityError("high_db must exceed low_db")
    if resolution_db <= 0:
        raise CapacityError("resolution_db must be positive")
    grid = np.arange(low_db, high_db + resolution_db, resolution_db)
    gains = capacity_gain(grid, alpha)
    above = np.nonzero(gains >= 1.0)[0]
    if above.size == 0:
        raise CapacityError("ANC never overtakes routing in the requested SNR range")
    return float(grid[above[0]])
