"""Derived quantities of the amplify-and-forward relay analysis (Appendix C).

These helpers expose the intermediate quantities of the Theorem 8.1
derivation — the relay's power-constrained amplification factor and the
effective SNR Alice sees after cancelling her own signal — so that tests
and the capacity sweep can check the published bound against the explicit
link-level computation rather than trusting a single closed-form line.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CapacityError


def amplification_factor(
    transmit_power: float,
    gain_alice_relay: float = 1.0,
    gain_bob_relay: float = 1.0,
    noise_power: float = 1.0,
) -> float:
    """The relay's amplitude gain ``A = sqrt(P / (P h_AR^2 + P h_BR^2 + N))``.

    Chosen so the relay's *output* power equals its budget ``P`` when it
    rebroadcasts the sum of the two received signals plus its own noise.
    """
    if transmit_power <= 0:
        raise CapacityError("transmit power must be positive")
    if noise_power <= 0:
        raise CapacityError("noise power must be positive")
    received = transmit_power * (gain_alice_relay ** 2 + gain_bob_relay ** 2) + noise_power
    return float(np.sqrt(transmit_power / received))


def relay_received_snr(
    transmit_power: float,
    gain: float = 1.0,
    noise_power: float = 1.0,
) -> float:
    """Per-sender SNR of the uplink as seen at the relay."""
    if transmit_power <= 0 or noise_power <= 0:
        raise CapacityError("powers must be positive")
    return float(transmit_power * gain ** 2 / noise_power)


def anc_receiver_snr(
    transmit_power: float,
    gain_relay_alice: float = 1.0,
    gain_bob_relay: float = 1.0,
    gain_alice_relay: float = 1.0,
    noise_power: float = 1.0,
) -> float:
    """Effective SNR at Alice after she cancels her own signal (Eq. 25).

    ``SNR_Alice = A^2 P h_RA^2 h_BR^2 / (A^2 h_RA^2 N + N)`` with the
    amplification factor ``A`` fixed by the relay's power constraint.  With
    unit gains and unit noise this reduces to ``SNR^2 / (3 SNR + 1)`` —
    the expression inside Theorem 8.1's logarithm — which the unit tests
    verify.
    """
    if transmit_power <= 0 or noise_power <= 0:
        raise CapacityError("powers must be positive")
    factor = amplification_factor(
        transmit_power,
        gain_alice_relay=gain_alice_relay,
        gain_bob_relay=gain_bob_relay,
        noise_power=noise_power,
    )
    signal = factor ** 2 * transmit_power * gain_relay_alice ** 2 * gain_bob_relay ** 2
    noise = factor ** 2 * gain_relay_alice ** 2 * noise_power + noise_power
    return float(signal / noise)
