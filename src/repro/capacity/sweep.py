"""SNR sweep that regenerates Fig. 7.

``capacity_sweep`` evaluates both Theorem 8.1 bounds over a range of SNRs
and returns a :class:`CapacityCurve` with the same series the figure plots
(traditional upper bound and ANC lower bound versus SNR in dB), plus the
derived gain curve and the low-SNR crossover point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.capacity.bounds import (
    DEFAULT_ALPHA,
    anc_capacity_lower_bound,
    capacity_gain,
    crossover_snr_db,
    traditional_capacity_upper_bound,
)
from repro.exceptions import CapacityError


@dataclass(frozen=True)
class CapacityCurve:
    """The Fig. 7 series: capacity bounds as functions of SNR."""

    snr_db: Tuple[float, ...]
    traditional: Tuple[float, ...]
    anc: Tuple[float, ...]
    gain: Tuple[float, ...]
    crossover_db: float

    def as_rows(self) -> List[Tuple[float, float, float, float]]:
        """Rows of (snr_db, traditional, anc, gain) for tabular output."""
        return list(zip(self.snr_db, self.traditional, self.anc, self.gain))

    @property
    def asymptotic_gain(self) -> float:
        """Gain at the highest swept SNR (should approach 2)."""
        return self.gain[-1]

    def gain_at(self, snr_db: float) -> float:
        """Linearly interpolated gain at an arbitrary SNR."""
        return float(np.interp(snr_db, self.snr_db, self.gain))


def validate_snr_grid(snr_db_values: Sequence[float]) -> np.ndarray:
    """Validate and normalise an SNR grid (non-empty, strictly increasing)."""
    grid = np.asarray(list(snr_db_values), dtype=float)
    if grid.size == 0:
        raise CapacityError("the SNR grid must not be empty")
    if np.any(np.diff(grid) <= 0):
        raise CapacityError("the SNR grid must be strictly increasing")
    return grid


def capacity_sweep(
    snr_db_values: Sequence[float] = None,
    alpha: float = DEFAULT_ALPHA,
) -> CapacityCurve:
    """Evaluate the Theorem 8.1 bounds over a range of SNRs (Fig. 7).

    Parameters
    ----------
    snr_db_values:
        SNR grid in dB.  Defaults to 0-55 dB in 1 dB steps, the figure's
        x-axis range.
    alpha:
        Time-sharing constant (1/4 in the paper).
    """
    if snr_db_values is None:
        snr_db_values = np.arange(0.0, 56.0, 1.0)
    grid = validate_snr_grid(snr_db_values)
    traditional = traditional_capacity_upper_bound(grid, alpha)
    anc = anc_capacity_lower_bound(grid, alpha)
    gain = capacity_gain(grid, alpha)
    try:
        crossover = crossover_snr_db(low_db=float(grid[0]), high_db=float(grid[-1]), alpha=alpha)
    except CapacityError:
        crossover = float("nan")
    return CapacityCurve(
        snr_db=tuple(float(v) for v in grid),
        traditional=tuple(float(v) for v in np.atleast_1d(traditional)),
        anc=tuple(float(v) for v in np.atleast_1d(anc)),
        gain=tuple(float(v) for v in np.atleast_1d(gain)),
        crossover_db=crossover,
    )
