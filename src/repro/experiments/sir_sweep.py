"""Figure 13: BER of ANC decoding versus signal-to-interference ratio.

The paper varies Bob's transmit power while keeping Alice's fixed and
plots the BER of the packet Alice decodes (Bob's packet) against the SIR
at Alice, defined as ``10 log10(P_Bob / P_Alice)`` (Eq. 9).  Because Alice
is cancelling her *own* signal, low SIR means the packet she wants is much
weaker than the interference she has to remove — the regime where blind
separation schemes give up (they need ~+6 dB) but ANC still decodes with
under 5 % BER at −3 dB.

This runner recreates the setup directly: for each SIR point it generates
collisions between Alice's and Bob's frames through the amplify-and-
forward relay, decodes Bob's packet at Alice, and averages the payload BER.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.impairments import impair_link
from repro.channel.interference import InterferenceCombiner, OverlapModel
from repro.channel.link import Link
from repro.channel.relay import AmplifyAndForwardRelayChannel
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine, default_engine
from repro.framing.buffer import SentPacketBuffer
from repro.framing.frame import Framer
from repro.framing.packet import Packet
from repro.anc.pipeline import ReceiveOutcome, ReceivePipeline
from repro.modulation.msk import MSKModulator
from repro.protocols.anc import default_min_offset
from repro.utils.db import db_to_linear


@dataclass(frozen=True)
class SIRPoint:
    """One point of the Fig. 13 curve."""

    sir_db: float
    mean_ber: float
    packets: int
    decode_failures: int


def run_sir_point_trial(
    cfg: ExperimentConfig,
    point_index: int,
    sir_db_values: Tuple[float, ...],
    packets_per_point: int,
    snr_db: float,
) -> SIRPoint:
    """Simulate every collision of one SIR grid point (one engine trial).

    Picklable so the sweep can fan points out across process workers; the
    random stream is keyed by ``point_index`` alone, so the point's result
    is independent of execution order.
    """
    sir_db = float(sir_db_values[point_index])
    framer = Framer()
    rng = cfg.run_rng(1000 + point_index, stream=30)
    overlap_model = OverlapModel(
        mean_overlap=cfg.draw_run_overlap(rng),
        jitter=cfg.overlap_jitter,
        min_offset=default_min_offset(),
        rng=rng,
    )
    # Alice transmits at unit amplitude; Bob's amplitude realises the
    # requested SIR at Alice (both go through statistically identical
    # links, so the transmit-amplitude ratio is the received ratio).
    bob_amplitude = db_to_linear(sir_db)
    alice_mod = MSKModulator(amplitude=1.0)
    bob_mod = MSKModulator(amplitude=bob_amplitude)

    # Noise relative to Alice's received power (attenuation 0.8).
    noise_power = (0.8 ** 2) / (10.0 ** (snr_db / 10.0))

    bers: List[float] = []
    failures = 0
    for packet_index in range(packets_per_point):
        alice_packet = Packet.random(1, 2, packet_index, cfg.payload_bits, rng)
        bob_packet = Packet.random(2, 1, 1000 + packet_index, cfg.payload_bits, rng)
        alice_frame = framer.build(alice_packet)
        bob_frame = framer.build(bob_packet)
        alice_wave = alice_mod.modulate(alice_frame.bits)
        bob_wave = bob_mod.modulate(bob_frame.bits)

        link_alice = Link(
            attenuation=0.8,
            phase_shift=float(rng.uniform(-np.pi, np.pi)),
            frequency_offset=float(rng.uniform(0.01, 0.04)),
        )
        link_bob = Link(
            attenuation=0.8,
            phase_shift=float(rng.uniform(-np.pi, np.pi)),
            frequency_offset=-float(rng.uniform(0.01, 0.04)),
        )
        if cfg.impairments.enabled:
            # The hand-built Fig. 13 links honour the same impairment
            # declaration as topology-based trials: the implicit node set
            # is (relay 0, Alice 1, Bob 2), so the two colliding senders
            # get distinct oscillators and every hop fades.
            offsets = cfg.impairments.sender_offsets([0, 1, 2])
            impair_link(link_alice, offsets[1], cfg.impairments, rng)
            impair_link(link_bob, offsets[2], cfg.impairments, rng)
        combiner = InterferenceCombiner(noise_power=noise_power, rng=rng)
        _, offset = overlap_model.draw_offsets(len(alice_wave))
        collision = combiner.combine(
            [(alice_wave, link_alice, 0), (bob_wave, link_bob, offset)],
            tail_padding=32,
        )
        relay = AmplifyAndForwardRelayChannel(transmit_power=1.0)
        broadcast = relay.apply(collision.signal)
        downlink = Link(
            attenuation=0.8,
            phase_shift=float(rng.uniform(-np.pi, np.pi)),
            frequency_offset=float(rng.uniform(-0.02, 0.02)),
            noise_power=noise_power,
        )
        if cfg.impairments.enabled:
            impair_link(
                downlink,
                cfg.impairments.sender_offsets([0, 1, 2])[0],
                cfg.impairments,
                rng,
            )
        received = downlink.propagate(broadcast, rng=rng)

        buffer = SentPacketBuffer()
        buffer.store(alice_frame)
        pipeline = ReceivePipeline(
            noise_power=noise_power,
            expected_payload_bits=cfg.payload_bits,
            known_frames=buffer,
        )
        outcome = pipeline.receive(received)
        if (
            outcome.outcome != ReceiveOutcome.ANC_DECODED
            or outcome.packet is None
            or outcome.packet.payload.size != bob_packet.payload.size
        ):
            failures += 1
            continue
        bers.append(
            float(np.mean(outcome.packet.payload != bob_packet.payload))
        )

    mean_ber = float(np.mean(bers)) if bers else 0.5
    return SIRPoint(
        sir_db=sir_db,
        mean_ber=mean_ber,
        packets=packets_per_point,
        decode_failures=failures,
    )


def run_sir_sweep(
    config: Optional[ExperimentConfig] = None,
    sir_db_values: Sequence[float] = (-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 4.0),
    packets_per_point: int = 20,
    snr_db: float = 19.0,
    engine: Optional[ExperimentEngine] = None,
) -> List[SIRPoint]:
    """Measure Alice's decoding BER as a function of SIR (Fig. 13).

    Parameters
    ----------
    config:
        Supplies payload size, overlap statistics and the master seed.
    sir_db_values:
        The SIR grid; the paper sweeps −3 dB to +4 dB.
    packets_per_point:
        Collisions simulated per SIR value.
    snr_db:
        Operating SNR of all links during the sweep (power control changes
        only Bob's transmit power, not the noise).
    engine:
        How the grid points execute (serial, parallel, resumed from a
        disk cache); the sweep result is identical either way.
    """
    cfg = config if config is not None else ExperimentConfig()
    params = {
        "sir_db_values": tuple(float(v) for v in sir_db_values),
        "packets_per_point": int(packets_per_point),
        "snr_db": float(snr_db),
    }
    return default_engine(engine).run_batched(
        "fig13_sir_sweep",
        run_sir_point_trial,
        cfg,
        range(len(params["sir_db_values"])),
        params=params,
        batch_size=cfg.engine_batch_size,
    )


def render_sir_table(points: Sequence[SIRPoint]) -> str:
    """Plain-text rendering of the Fig. 13 curve."""
    lines = ["SIR (dB) | mean BER | failures"]
    lines.append("-" * len(lines[0]))
    for point in points:
        lines.append(f"{point.sir_db:8.1f} | {point.mean_ber:8.4f} | {point.decode_failures:8d}")
    return "\n".join(lines)
