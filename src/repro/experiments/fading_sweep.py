"""Scenario: ANC versus digital schemes under stochastic fading.

§6 of the paper warns that channel gain and phase "vary with time" — the
reason naive analog subtraction is fragile and the pilot-based estimates
have to be refreshed every packet.  This sweep quantifies that: the same
Alice–Bob traffic runs under analog network coding, digital XOR coding
(COPE) and traditional routing while every link additionally fades with a
Rician K-factor swept from the scattered-only Rayleigh regime (no line of
sight, deep fades) up to a strongly specular channel that approaches the
baseline flat link.

The K-factor axis is in dB; the sentinel value
:data:`RAYLEIGH_K_DB` (and anything at or below it) selects pure Rayleigh
fading.  Fades are drawn per packet (``block`` mode by default — the
``fading_mode``/``fading_doppler`` scenario params select the in-packet
drift variant) from the per-trial engine substream, so the sweep is fully
reproducible and parallelisable.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.channel.impairments import apply_impairments
from repro.channel.interference import OverlapModel
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import (
    ScenarioSpec,
    register_scenario,
    summarize_run,
)
from repro.network.flows import Flow
from repro.network.generator import generate_star
from repro.network.topologies import ALICE, BOB, RELAY, ChannelConditions
from repro.protocols.anc import ANCRelayProtocol, default_min_offset
from repro.protocols.cope import CopeRelayProtocol
from repro.protocols.traditional import TraditionalRouting

#: Base RNG stream for this scenario (disjoint from every other family).
_STREAM_BASE = 850

#: K-factor (dB) at or below which the sweep uses pure Rayleigh fading.
RAYLEIGH_K_DB = -90.0


def run_fading_sweep_trial(
    cfg: ExperimentConfig,
    key: Tuple[float, int],
    fading_mode: str = "block",
    fading_doppler: float = 0.0,
) -> Dict[str, Dict[str, float]]:
    """Execute one (k_db, run) cell of the fading sweep.

    Picklable engine trial.  As in the CFO sweep, the topology substream
    ignores the sweep value so every K-factor point of a run shares one
    radio environment; any sender CFO in ``cfg.impairments`` is kept, so
    fading and CFO compose.
    """
    k_db, run = float(key[0]), int(key[1])
    if cfg.impairments.fading != "none":
        raise ConfigurationError(
            "fading_sweep sweeps the fading family and K-factor itself; "
            "leave --fading unset (a configured family would be discarded "
            "but still recorded in the result's config snapshot). --cfo "
            "and --fading-mode/--fading-doppler compose normally."
        )
    topo_rng = cfg.run_rng(run, stream=_STREAM_BASE)
    snr_db = cfg.draw_run_snr(topo_rng)
    mean_overlap = cfg.draw_run_overlap(topo_rng)
    conditions = ChannelConditions(snr_db=snr_db)
    topology = generate_star(conditions, topo_rng, leaves=2, hub=RELAY)
    # The scenario params are the registered defaults; an explicit drift
    # request in the caller's config (--fading-mode/--fading-doppler)
    # takes precedence instead of being silently reset to block fading.
    base = cfg.impairments
    if (base.fading_mode, base.fading_doppler) != ("block", 0.0):
        fading_mode, fading_doppler = base.fading_mode, base.fading_doppler
    impairments = replace(
        base,
        fading="rayleigh" if k_db <= RAYLEIGH_K_DB else "rician",
        rician_k_db=k_db,
        fading_mode=fading_mode,
        fading_doppler=fading_doppler,
    )
    apply_impairments(
        topology, impairments, cfg.run_rng(run, stream=_STREAM_BASE + 6)
    )
    flow_a = Flow(ALICE, BOB, cfg.packets_per_run)
    flow_b = Flow(BOB, ALICE, cfg.packets_per_run)

    traditional = TraditionalRouting(
        topology,
        [flow_a, flow_b],
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        rng=cfg.run_rng(run, stream=_STREAM_BASE + 1),
        topology_name="alice_bob",
    ).run()

    cope = CopeRelayProtocol(
        topology,
        RELAY,
        flow_a,
        flow_b,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        rng=cfg.run_rng(run, stream=_STREAM_BASE + 2),
        topology_name="alice_bob",
    ).run()

    anc_rng = cfg.run_rng(run, stream=_STREAM_BASE + 3)
    anc = ANCRelayProtocol(
        topology,
        RELAY,
        flow_a,
        flow_b,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        redundancy_overhead=cfg.anc_redundancy_overhead,
        overlap_model=OverlapModel(
            mean_overlap=mean_overlap,
            jitter=cfg.overlap_jitter,
            min_offset=default_min_offset(),
            rng=anc_rng,
        ),
        rng=anc_rng,
        topology_name="alice_bob",
    ).run()

    return {
        "anc": summarize_run(anc),
        "cope": summarize_run(cope),
        "traditional": summarize_run(traditional),
    }


FADING_SWEEP = register_scenario(
    ScenarioSpec(
        name="fading_sweep",
        description="ANC vs COPE vs routing on the Alice-Bob exchange under "
        "Rayleigh/Rician fading swept over the K-factor (dB; <= -90 is "
        "pure Rayleigh)",
        topology="star",
        sweep_axis="k_db",
        sweep_values=(-99.0, 0.0, 6.0, 12.0),
        quick_sweep_values=(-99.0, 6.0),
        schemes=("anc", "cope", "traditional"),
        trial_fn=run_fading_sweep_trial,
        params={"fading_mode": "block", "fading_doppler": 0.0},
    )
)
