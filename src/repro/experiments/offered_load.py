"""Scenario: goodput and drops versus offered load (§8's load sweep).

The paper's §8 evaluates ANC on a real testbed by sweeping the offered
load of the Alice–relay–Bob exchange and plotting per-scheme goodput.
This scenario reproduces that experiment in the time domain with the
:mod:`repro.sim` discrete-event core: Poisson arrivals feed per-endpoint
queues, a CSMA/BEB MAC (or the collision-free TDMA grid, via
``--mac-policy scheduled``) arbitrates the channel, and every frame is
demodulated by the existing sample-level PHY.

All three schemes run on *identical* arrival sample paths and channel
draws — the per-cell entropy is shared, and the per-node named RNG
streams guarantee the same packets arrive at the same instants whatever
the scheme does with them.  Expected shape: at low load every scheme
delivers what arrives; as load grows, hidden-terminal collisions (Alice
and Bob cannot carrier-sense each other) collapse ``traditional`` first,
``cope``'s coded broadcasts stretch a little further, and ``anc``'s
triggered concurrent uplinks — which *want* the collision — keep scaling,
reproducing the paper's ``anc > cope > traditional`` high-load ordering.

The config's ``sim_duration`` and ``mac_policy`` knobs are honoured;
``arrival_rate`` is the sweep axis itself, so setting it on the config
raises instead of being silently ignored.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import ScenarioSpec, register_scenario
from repro.network.topologies import ChannelConditions
from repro.sim.core import RngStreams
from repro.sim.simulation import SimParams, TrafficSimulation

#: Base RNG stream for this scenario; each sweep value derives its own
#: substream so load points never share randomness.
_STREAM_BASE = 600

#: Simulated horizon (frame-times) when the config leaves ``sim_duration``
#: at its "use the scenario default" value of 0.
DEFAULT_DURATION_FRAMES = 48.0


def simulate_schemes(
    cfg: ExperimentConfig,
    arrival_rate: float,
    run: int,
    stream: int,
    traffic_model: str = "poisson",
) -> Dict[str, Dict[str, float]]:
    """Run the three relaying schemes on one shared traffic sample path.

    The entropy fed to :class:`TrafficSimulation` is identical for every
    scheme, so arrivals, payloads and channel draws match exactly; only
    the scheme's own behaviour differs.  Shared helper of the
    ``offered_load_sweep`` and ``queueing_delay`` scenarios.
    """
    draw_rng = cfg.run_rng(run, stream=stream)
    snr_db = cfg.draw_run_snr(draw_rng)
    mean_overlap = cfg.draw_run_overlap(draw_rng)
    conditions = ChannelConditions(snr_db=snr_db)
    duration = cfg.sim_duration if cfg.sim_duration > 0 else DEFAULT_DURATION_FRAMES
    entropy = [
        cfg.seed,
        stream,
        int(run),
        RngStreams._key_material(traffic_model),
        int(round(arrival_rate * 1000)),
    ]
    cell: Dict[str, Dict[str, float]] = {}
    for scheme in ("anc", "cope", "traditional"):
        params = SimParams(
            scheme=scheme,
            mac_policy=cfg.mac_policy,
            traffic_model=traffic_model,
            arrival_rate=arrival_rate,
            sim_duration_frames=duration,
            payload_bits=cfg.payload_bits,
            ber_acceptance=cfg.ber_acceptance,
            redundancy_overhead=(
                cfg.anc_redundancy_overhead if scheme == "anc" else 0.0
            ),
            mean_overlap=mean_overlap,
            overlap_jitter=cfg.overlap_jitter,
        )
        report = TrafficSimulation(params, entropy=entropy, conditions=conditions).run()
        cell[scheme] = report.metrics()
    return cell


def run_offered_load_trial(
    cfg: ExperimentConfig, key: Tuple[float, int]
) -> Dict[str, Dict[str, float]]:
    """Execute one (offered load, run) cell of the load sweep.

    Picklable engine trial; all randomness derives from the config seed,
    the sweep value and the run index, so the cell is independent of
    execution order and worker placement.
    """
    load, run = float(key[0]), int(key[1])
    stream = _STREAM_BASE + int(round(load * 1000)) % 97
    return simulate_schemes(cfg, arrival_rate=load, run=run, stream=stream)


OFFERED_LOAD_SWEEP = register_scenario(
    ScenarioSpec(
        name="offered_load_sweep",
        description="goodput / drops vs offered load on the Alice-relay-Bob "
        "exchange (event-driven queues + CSMA, §8's load experiment)",
        topology="star",
        sweep_axis="load",
        sweep_values=(0.2, 0.4, 0.6, 0.8, 1.0, 1.2),
        quick_sweep_values=(0.2, 0.8, 1.2),
        schemes=("anc", "cope", "traditional"),
        trial_fn=run_offered_load_trial,
        consumes=("sim_duration", "mac_policy"),
    )
)
