"""Figure 9: the Alice–Bob topology.

Each run draws a fresh topology (link gains, phases, CFOs), a fresh
operating SNR and a fresh mean overlap, then executes the same traffic —
``packets_per_run`` packets in each direction — under ANC, traditional
routing and COPE.  Per-run throughput-gain samples feed the Fig. 9(a)
CDFs; per-packet BERs of the ANC decodes feed the Fig. 9(b) CDF.

Paper's headline results for this figure: ANC gains ~70 % over the
traditional approach and ~30 % over COPE, with most packets below 4 % BER.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.channel.impairments import IMPAIRMENT_STREAM, apply_impairments
from repro.channel.interference import OverlapModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine, default_engine
from repro.metrics.ber import ber_cdf
from repro.metrics.gain import pair_runs
from repro.metrics.report import ComparisonReport, ExperimentReport
from repro.network.flows import Flow
from repro.network.topologies import ALICE, BOB, RELAY, ChannelConditions, alice_bob_topology
from repro.protocols.anc import ANCRelayProtocol, default_min_offset
from repro.protocols.base import RunResult
from repro.protocols.cope import CopeRelayProtocol
from repro.protocols.traditional import TraditionalRouting


def run_alice_bob_trial(
    cfg: ExperimentConfig, run_index: int
) -> Tuple[RunResult, RunResult, RunResult]:
    """Execute one Fig. 9 testbed run under all three schemes.

    Top-level (hence picklable) so the :class:`ExperimentEngine` can
    dispatch it to process workers; all randomness derives from
    ``cfg.run_rng(run_index, ...)`` substreams, so the result does not
    depend on which worker executes the trial or in what order.

    Returns the ``(traditional, cope, anc)`` run results.
    """
    topo_rng = cfg.run_rng(run_index, stream=0)
    snr_db = cfg.draw_run_snr(topo_rng)
    mean_overlap = cfg.draw_run_overlap(topo_rng)
    conditions = ChannelConditions(snr_db=snr_db)
    topology = alice_bob_topology(conditions, topo_rng)
    apply_impairments(
        topology, cfg.impairments, cfg.run_rng(run_index, stream=IMPAIRMENT_STREAM)
    )
    flow_a = Flow(ALICE, BOB, cfg.packets_per_run)
    flow_b = Flow(BOB, ALICE, cfg.packets_per_run)

    traditional = TraditionalRouting(
        topology,
        [flow_a, flow_b],
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        rng=cfg.run_rng(run_index, stream=1),
        topology_name="alice_bob",
    )
    traditional_run = traditional.run()

    cope = CopeRelayProtocol(
        topology,
        RELAY,
        flow_a,
        flow_b,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        rng=cfg.run_rng(run_index, stream=2),
        topology_name="alice_bob",
    )
    cope_run = cope.run()

    anc_rng = cfg.run_rng(run_index, stream=3)
    overlap_model = OverlapModel(
        mean_overlap=mean_overlap,
        jitter=cfg.overlap_jitter,
        min_offset=default_min_offset(),
        rng=anc_rng,
    )
    anc = ANCRelayProtocol(
        topology,
        RELAY,
        flow_a,
        flow_b,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        redundancy_overhead=cfg.anc_redundancy_overhead,
        overlap_model=overlap_model,
        rng=anc_rng,
        topology_name="alice_bob",
    )
    return traditional_run, cope_run, anc.run()


def run_alice_bob_experiment(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentReport:
    """Run the Fig. 9 experiment and return its report.

    ``engine`` selects how the per-run trials execute (serial, parallel,
    batched into worker blocks via ``config.batch_size``, resumed from
    cache); the aggregated report is identical in every mode.
    """
    cfg = config if config is not None else ExperimentConfig()
    trials = default_engine(engine).run_batched(
        "fig09_alice_bob", run_alice_bob_trial, cfg, range(cfg.runs),
        batch_size=cfg.engine_batch_size,
    )
    traditional_runs: List[RunResult] = [t[0] for t in trials]
    cope_runs: List[RunResult] = [t[1] for t in trials]
    anc_runs: List[RunResult] = [t[2] for t in trials]

    report = ExperimentReport(name="fig09_alice_bob", anc_runs=anc_runs)
    report.baseline_runs = {"traditional": traditional_runs, "cope": cope_runs}
    report.comparisons = {
        "traditional": ComparisonReport(
            baseline_scheme="traditional",
            samples=pair_runs(anc_runs, traditional_runs),
        ),
        "cope": ComparisonReport(
            baseline_scheme="cope",
            samples=pair_runs(anc_runs, cope_runs),
        ),
    }
    report.ber_cdf = ber_cdf(anc_runs, include_losses=True)
    report.extras = {
        "mean_overlap": float(np.mean([r.mean_overlap for r in anc_runs])),
        "anc_delivery_ratio": float(
            np.mean([r.delivery_ratio for r in anc_runs])
        ),
    }
    return report
