"""Extension experiment: ANC behaviour across operating SNR.

The paper's capacity analysis (Fig. 7) predicts that analog network coding
loses to routing at low SNR — the relay amplifies noise along with the
signals — and approaches a 2x gain at high SNR.  The testbed evaluation
only operates in the WLAN regime (20-40 dB).  This extension experiment
closes that gap empirically: it sweeps the operating SNR of the simulated
Alice-Bob testbed and measures both the end-to-end throughput gain and the
BER of ANC decoding, so the measured crossover can be compared against the
theoretical one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.capacity.bounds import capacity_gain
from repro.channel.impairments import IMPAIRMENT_STREAM, apply_impairments
from repro.channel.interference import OverlapModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine, default_engine
from repro.network.flows import Flow
from repro.network.topologies import ALICE, BOB, RELAY, ChannelConditions, alice_bob_topology
from repro.protocols.anc import ANCRelayProtocol, default_min_offset
from repro.protocols.traditional import TraditionalRouting


@dataclass(frozen=True)
class SNRPoint:
    """Measured ANC behaviour at one operating SNR."""

    snr_db: float
    gain_over_traditional: float
    mean_ber: float
    delivery_ratio: float
    theoretical_gain: float

    @property
    def anc_wins(self) -> bool:
        """Did ANC beat traditional routing at this SNR?"""
        return self.gain_over_traditional > 1.0


def run_snr_point_trial(
    cfg: ExperimentConfig,
    point_index: int,
    snr_db_values: Tuple[float, ...],
    runs_per_point: int,
) -> SNRPoint:
    """Evaluate one operating-SNR grid point (one engine trial).

    Picklable so the sweep can fan points out across process workers;
    every run's random stream is keyed by ``point_index`` and the run
    number alone, so the point's result is independent of execution order.
    """
    index = point_index
    snr_db = float(snr_db_values[point_index])
    gains: List[float] = []
    bers: List[float] = []
    delivery: List[float] = []
    for run in range(runs_per_point):
        rng = cfg.run_rng(5000 + 100 * index + run, stream=40)
        conditions = ChannelConditions(snr_db=float(snr_db))
        topology = alice_bob_topology(conditions, rng)
        apply_impairments(
            topology,
            cfg.impairments,
            cfg.run_rng(5000 + 100 * index + run, stream=IMPAIRMENT_STREAM),
        )
        flow_a = Flow(ALICE, BOB, cfg.packets_per_run)
        flow_b = Flow(BOB, ALICE, cfg.packets_per_run)
        traditional = TraditionalRouting(
            topology,
            [flow_a, flow_b],
            payload_bits=cfg.payload_bits,
            ber_acceptance=cfg.ber_acceptance,
            rng=cfg.run_rng(5000 + 100 * index + run, stream=41),
        ).run()
        anc_rng = cfg.run_rng(5000 + 100 * index + run, stream=42)
        anc = ANCRelayProtocol(
            topology,
            RELAY,
            flow_a,
            flow_b,
            payload_bits=cfg.payload_bits,
            ber_acceptance=cfg.ber_acceptance,
            redundancy_overhead=cfg.anc_redundancy_overhead,
            overlap_model=OverlapModel(
                mean_overlap=cfg.draw_run_overlap(anc_rng),
                jitter=cfg.overlap_jitter,
                min_offset=default_min_offset(),
                rng=anc_rng,
            ),
            rng=anc_rng,
        ).run()
        gains.append(anc.throughput / traditional.throughput)
        decoded = [b for b in anc.packet_bers if b < 0.5]
        bers.append(float(np.mean(decoded)) if decoded else 0.5)
        delivery.append(anc.delivery_ratio)
    return SNRPoint(
        snr_db=float(snr_db),
        gain_over_traditional=float(np.mean(gains)),
        mean_ber=float(np.mean(bers)),
        delivery_ratio=float(np.mean(delivery)),
        theoretical_gain=float(capacity_gain(float(snr_db))),
    )


def run_snr_sweep(
    config: Optional[ExperimentConfig] = None,
    snr_db_values: Sequence[float] = (16.0, 20.0, 24.0, 28.0, 32.0, 36.0),
    runs_per_point: int = 2,
    engine: Optional[ExperimentEngine] = None,
) -> List[SNRPoint]:
    """Measure throughput gain and BER of ANC across operating SNRs.

    Parameters
    ----------
    config:
        Supplies payload size, per-run packet counts, overlap statistics
        and the master seed.
    snr_db_values:
        Operating SNRs to evaluate.  Values much below ~14 dB make packet
        detection itself unreliable, mirroring how real 802.11 receivers
        cannot associate below ~5-10 dB (§8).
    runs_per_point:
        Independent topology draws averaged per SNR value.
    engine:
        How the grid points execute (serial, parallel, resumed from a
        disk cache); the sweep result is identical either way.
    """
    cfg = config if config is not None else ExperimentConfig()
    params = {
        "snr_db_values": tuple(float(v) for v in snr_db_values),
        "runs_per_point": int(runs_per_point),
    }
    return default_engine(engine).run_batched(
        "extension_snr_sweep",
        run_snr_point_trial,
        cfg,
        range(len(params["snr_db_values"])),
        params=params,
        batch_size=cfg.engine_batch_size,
    )


def render_snr_table(points: Sequence[SNRPoint]) -> str:
    """Plain-text rendering of the SNR sweep."""
    lines = ["SNR (dB) | measured gain | theory gain | mean BER | delivery"]
    lines.append("-" * len(lines[0]))
    for point in points:
        lines.append(
            f"{point.snr_db:8.1f} | {point.gain_over_traditional:13.3f} | "
            f"{point.theoretical_gain:11.3f} | {point.mean_ber:8.4f} | "
            f"{point.delivery_ratio:8.3f}"
        )
    return "\n".join(lines)
