"""Scenario: multi-flow traffic over meshes with geometry-driven links.

The ``mesh_sweep`` scenario hand-sets its link gains (a linear decay
between two constants); this variant derives them from where the radios
actually landed, through the log-distance
:class:`~repro.channel.pathloss.PathLossModel`.  Nearby node pairs get
strong links, pairs at the edge of the radio range get weak ones, and the
path-loss ``exponent`` parameter turns one placement into a whole family
of propagation environments — free space (2.0) spreads gains gently,
indoor-office values (≈3) punish distance hard and widen the SNR spread
the schemes must survive.

Everything else matches ``mesh_sweep`` byte-for-byte machinery-wise: the
same flow draw, the same ANC-aware pairing planner, the same three
schemes over the same flow set
(:func:`repro.experiments.mesh_sweep.run_mesh_schemes`), with the sweep
axis again the number of offered flows.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.channel.impairments import apply_impairments
from repro.channel.pathloss import PathLossModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.mesh_sweep import draw_mesh_flows, run_mesh_schemes
from repro.experiments.scenarios import ScenarioSpec, register_scenario
from repro.network.generator import generate_geometric_mesh
from repro.network.topologies import ChannelConditions

#: Base RNG stream for this scenario (disjoint from every other family).
_STREAM_BASE = 900


def run_geometry_mesh_trial(
    cfg: ExperimentConfig,
    key: Tuple[int, int],
    nodes: int = 12,
    radius: float = 0.45,
    exponent: float = 2.0,
    reference_distance: float = 0.2,
) -> Dict[str, Dict[str, float]]:
    """Execute one (n_flows, run) cell of the path-loss mesh sweep.

    Picklable engine trial; placement, link draws, the flow draw and
    every protocol's randomness derive from ``cfg.run_rng`` substreams
    keyed by the flow count, exactly like the hand-set mesh sweep.  The
    path-loss law (``exponent``, ``reference_distance``) arrives through
    the scenario params so registered variants stay cache-distinct.
    """
    n_flows, run = int(key[0]), int(key[1])
    streams = _STREAM_BASE + 64 * n_flows
    topo_rng = cfg.run_rng(run, stream=streams)
    snr_db = cfg.draw_run_snr(topo_rng)
    mean_overlap = cfg.draw_run_overlap(topo_rng)
    conditions = ChannelConditions(snr_db=snr_db)
    model = PathLossModel(
        exponent=exponent,
        reference_distance=reference_distance,
        reference_attenuation=0.95,
        min_attenuation=0.05,
    )
    topology = generate_geometric_mesh(
        conditions, topo_rng, nodes=nodes, radius=radius, path_loss=model
    )
    apply_impairments(
        topology, cfg.impairments, cfg.run_rng(run, stream=streams + 6)
    )
    flows = draw_mesh_flows(topology, n_flows, cfg.packets_per_run, topo_rng)
    return run_mesh_schemes(cfg, run, streams, topology, flows, mean_overlap)


GEOMETRY_MESH = register_scenario(
    ScenarioSpec(
        name="geometry_mesh",
        description="mesh_sweep variant with placed nodes and log-distance "
        "path-loss links: aggregate gain vs offered flows when SNR/SIR "
        "follow from the geometry",
        topology="geometric_mesh",
        sweep_axis="flows",
        sweep_values=(2, 4, 6, 8),
        quick_sweep_values=(2, 4),
        schemes=("anc", "cope", "traditional"),
        trial_fn=run_geometry_mesh_trial,
        params={
            "nodes": 12,
            "radius": 0.45,
            "exponent": 2.0,
            "reference_distance": 0.2,
        },
    )
)
