"""Experiment runners that regenerate every figure in the paper's evaluation.

Each module reproduces one figure:

* :mod:`repro.experiments.capacity_fig7` — Fig. 7, capacity bounds vs SNR.
* :mod:`repro.experiments.alice_bob` — Fig. 9, Alice–Bob throughput-gain
  and BER CDFs.
* :mod:`repro.experiments.x_topology` — Fig. 10, the "X" topology.
* :mod:`repro.experiments.chain` — Fig. 12, the unidirectional chain.
* :mod:`repro.experiments.sir_sweep` — Fig. 13, BER versus
  signal-to-interference ratio.
* :mod:`repro.experiments.snr_sweep` — extension: measured gain and BER
  across operating SNR, compared against the Theorem 8.1 prediction.
* :mod:`repro.experiments.summary` — the §11.3 summary-of-results table.

Beyond the figures, the *scenario* registry
(:mod:`repro.experiments.scenarios`) hosts N-node workloads declared as
data — topology generator + flows + sweep axis — and runs them through
the same engine; the shipped scenarios — :mod:`~repro.experiments.chain_sweep`
(throughput gain vs chain length), :mod:`~repro.experiments.mesh_sweep`
(multi-flow random meshes), :mod:`~repro.experiments.cfo_sweep` (BER vs
carrier frequency offset), :mod:`~repro.experiments.fading_sweep` (ANC vs
digital under Rayleigh/Rician fading),
:mod:`~repro.experiments.geometry_mesh` (path-loss meshes with placed
nodes), :mod:`~repro.experiments.offered_load` (event-driven goodput vs
offered load, §8) and :mod:`~repro.experiments.queueing_delay` (delay vs
traffic burstiness) — are dispatched from the CLI as
``python -m repro.cli run <scenario>``.

Both registries are merged into the single public facade
:mod:`repro.api`, whose ``run(name, ...)`` returns a typed
:class:`~repro.results.model.ExperimentResult` (tables + scalars +
config snapshot + engine metadata, lossless JSON/CSV export); plain text
is a view over it (:func:`repro.results.render.render_text`).  See
``docs/API.md``.

All runners are deterministic given an :class:`ExperimentConfig` seed and
scale from quick CI-sized runs to paper-scale runs by changing the config.
Their Monte-Carlo trials execute through the
:class:`~repro.experiments.engine.ExperimentEngine`, which fans them out
across process workers and caches completed trials to disk — pass
``engine=ExperimentEngine(workers=8, cache_dir=...)`` to any runner to
parallelise or resume a sweep with bit-identical results.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import EngineStats, ExperimentEngine
from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.x_topology import run_x_topology_experiment
from repro.experiments.chain import run_chain_experiment
from repro.experiments.sir_sweep import SIRPoint, run_sir_sweep
from repro.experiments.snr_sweep import SNRPoint, run_snr_sweep
from repro.experiments.capacity_fig7 import run_capacity_experiment
from repro.experiments.summary import run_summary
from repro.experiments.runner import RUNNERS, RunnerSpec, available_runners, get_runner
from repro.experiments.scenarios import (
    SCENARIOS,
    ScenarioReport,
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
)
from repro.experiments import chain_sweep as _chain_sweep  # noqa: F401  (registers)
from repro.experiments import mesh_sweep as _mesh_sweep  # noqa: F401  (registers)
from repro.experiments import cfo_sweep as _cfo_sweep  # noqa: F401  (registers)
from repro.experiments import fading_sweep as _fading_sweep  # noqa: F401  (registers)
from repro.experiments import geometry_mesh as _geometry_mesh  # noqa: F401  (registers)
from repro.experiments import offered_load as _offered_load  # noqa: F401  (registers)
from repro.experiments import queueing_delay as _queueing_delay  # noqa: F401  (registers)

__all__ = [
    "EngineStats",
    "ExperimentConfig",
    "ExperimentEngine",
    "RUNNERS",
    "RunnerSpec",
    "SCENARIOS",
    "SIRPoint",
    "SNRPoint",
    "ScenarioReport",
    "ScenarioSpec",
    "available_runners",
    "available_scenarios",
    "get_runner",
    "get_scenario",
    "register_scenario",
    "run_scenario",
    "run_alice_bob_experiment",
    "run_capacity_experiment",
    "run_chain_experiment",
    "run_sir_sweep",
    "run_snr_sweep",
    "run_summary",
    "run_x_topology_experiment",
]
