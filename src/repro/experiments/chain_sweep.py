"""Scenario: throughput gain versus chain length (K = 2..8 hops).

The paper evaluates the chain at exactly 3 hops (Fig. 12); this scenario
generalizes the question — *how does ANC's pipelining gain depend on the
chain length?* — by sweeping K-hop chains under three schemes:

* ``anc`` — the planner's stride-2 schedule: transmitters two positions
  apart, every interior receiver deliberately decoding the collision of
  the new packet with the one it forwarded a phase earlier;
* ``cope`` — COPE-style digital coding.  A one-way flow offers nothing to
  XOR, so the scheme degenerates to the best schedule digital radios can
  use: the planner's stride-3 collision-free spatial-reuse pipeline;
* ``traditional`` — the paper's §11.1a baseline, one hop per slot with no
  spatial reuse.

Expected shape (and what the summary table shows): at K = 2 there is no
ANC opportunity at all, so ANC pays its redundancy overhead for nothing;
the gain peaks around the paper's K = 3 (~1.2-1.4x over the pipelined
digital schedule, consistent with §11.6's 36 %); and for long chains the
gain over ``cope`` erodes again, because every extra concurrent
transmitter chains another §7.2 partial-overlap offset onto the slot
while the collision-free pipeline keeps its slots at exactly one frame.
The gain over ``traditional`` instead keeps growing with K — that
baseline scales as K slots per packet.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.channel.impairments import apply_impairments
from repro.channel.interference import OverlapModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import (
    ScenarioSpec,
    register_scenario,
    summarize_run,
)
from repro.network.flows import Flow
from repro.network.generator import generate_chain
from repro.network.topologies import ChannelConditions
from repro.protocols.anc import default_min_offset
from repro.protocols.scheduled import ChainPipelineProtocol
from repro.protocols.traditional import TraditionalRouting

#: Base RNG stream for this scenario; each (hops, protocol) pair derives
#: its own substream so sweep points never share randomness.
_STREAM_BASE = 400


def run_chain_sweep_trial(
    cfg: ExperimentConfig, key: Tuple[int, int]
) -> Dict[str, Dict[str, float]]:
    """Execute one (hops, run) cell of the chain-length sweep.

    Picklable engine trial; all randomness derives from
    ``cfg.run_rng(run, ...)`` substreams keyed by the hop count, so the
    cell is independent of execution order and worker placement.
    """
    hops, run = int(key[0]), int(key[1])
    streams = _STREAM_BASE + 8 * hops
    topo_rng = cfg.run_rng(run, stream=streams)
    snr_db = cfg.draw_run_snr(topo_rng)
    mean_overlap = cfg.draw_run_overlap(topo_rng)
    conditions = ChannelConditions(snr_db=snr_db)
    topology = generate_chain(conditions, topo_rng, hops=hops)
    apply_impairments(
        topology, cfg.impairments, cfg.run_rng(run, stream=streams + 6)
    )
    path = tuple(range(1, hops + 2))
    flow = Flow(path[0], path[-1], cfg.packets_per_run)

    traditional = TraditionalRouting(
        topology,
        [flow],
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        rng=cfg.run_rng(run, stream=streams + 1),
        topology_name=f"chain{hops}",
    ).run()

    cope = ChainPipelineProtocol(
        topology,
        path=path,
        coding="plain",
        packets=cfg.packets_per_run,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        redundancy_overhead=0.0,
        rng=cfg.run_rng(run, stream=streams + 2),
        topology_name=f"chain{hops}",
        scheme="cope",
    ).run()

    anc_rng = cfg.run_rng(run, stream=streams + 3)
    anc = ChainPipelineProtocol(
        topology,
        path=path,
        coding="anc",
        packets=cfg.packets_per_run,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        redundancy_overhead=cfg.chain_redundancy_overhead,
        overlap_model=OverlapModel(
            mean_overlap=mean_overlap,
            jitter=cfg.overlap_jitter,
            min_offset=default_min_offset(),
            rng=anc_rng,
        ),
        rng=anc_rng,
        topology_name=f"chain{hops}",
        scheme="anc",
    ).run()

    return {
        "anc": summarize_run(anc),
        "cope": summarize_run(cope),
        "traditional": summarize_run(traditional),
    }


CHAIN_SWEEP = register_scenario(
    ScenarioSpec(
        name="chain_sweep",
        description="throughput gain vs chain length (K = 2..8 hops, "
        "ANC vs pipelined digital coding vs plain routing)",
        topology="chain",
        sweep_axis="hops",
        sweep_values=(2, 3, 4, 5, 6, 7, 8),
        quick_sweep_values=(2, 3, 5, 8),
        schemes=("anc", "cope", "traditional"),
        trial_fn=run_chain_sweep_trial,
    )
)
