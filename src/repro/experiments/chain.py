"""Figure 12: unidirectional traffic over the 3-hop chain.

COPE does not apply to a single unidirectional flow, so the comparison is
ANC versus traditional routing only.  The paper reports a ~36 % average
gain and a BER around 1 % — noticeably lower than the Alice–Bob BER
because the interfered signal is decoded directly at the node that first
receives it instead of being re-amplified (and its noise with it) by the
relay.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.channel.impairments import IMPAIRMENT_STREAM, apply_impairments
from repro.channel.interference import OverlapModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine, default_engine
from repro.metrics.ber import ber_cdf
from repro.metrics.gain import pair_runs
from repro.metrics.report import ComparisonReport, ExperimentReport
from repro.network.flows import Flow
from repro.network.topologies import ChannelConditions, chain_topology
from repro.protocols.anc import ANCChainProtocol, default_min_offset
from repro.protocols.base import RunResult
from repro.protocols.traditional import TraditionalRouting

#: Node ids of the 3-hop chain N1 -> N2 -> N3 -> N4.
CHAIN_PATH = (1, 2, 3, 4)


def run_chain_trial(
    cfg: ExperimentConfig, run_index: int
) -> Tuple[RunResult, RunResult]:
    """Execute one Fig. 12 chain run under both schemes.

    Picklable engine trial; all randomness is keyed by ``run_index``.
    Returns the ``(traditional, anc)`` run results.
    """
    topo_rng = cfg.run_rng(run_index, stream=20)
    snr_db = cfg.draw_run_snr(topo_rng)
    mean_overlap = cfg.draw_run_overlap(topo_rng)
    conditions = ChannelConditions(snr_db=snr_db)
    topology = chain_topology(conditions, topo_rng)
    apply_impairments(
        topology, cfg.impairments, cfg.run_rng(run_index, stream=IMPAIRMENT_STREAM)
    )
    flow = Flow(CHAIN_PATH[0], CHAIN_PATH[-1], cfg.packets_per_run)

    traditional = TraditionalRouting(
        topology,
        [flow],
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        rng=cfg.run_rng(run_index, stream=21),
        topology_name="chain",
    )
    traditional_run = traditional.run()

    anc_rng = cfg.run_rng(run_index, stream=22)
    overlap_model = OverlapModel(
        mean_overlap=mean_overlap,
        jitter=cfg.overlap_jitter,
        min_offset=default_min_offset(),
        rng=anc_rng,
    )
    anc = ANCChainProtocol(
        topology,
        path=CHAIN_PATH,
        packets=cfg.packets_per_run,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        redundancy_overhead=cfg.chain_redundancy_overhead,
        overlap_model=overlap_model,
        rng=anc_rng,
    )
    return traditional_run, anc.run()


def run_chain_experiment(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentReport:
    """Run the Fig. 12 experiment and return its report."""
    cfg = config if config is not None else ExperimentConfig()
    trials = default_engine(engine).run_batched(
        "fig12_chain", run_chain_trial, cfg, range(cfg.runs),
        batch_size=cfg.engine_batch_size,
    )
    traditional_runs: List[RunResult] = [t[0] for t in trials]
    anc_runs: List[RunResult] = [t[1] for t in trials]

    report = ExperimentReport(name="fig12_chain", anc_runs=anc_runs)
    report.baseline_runs = {"traditional": traditional_runs}
    report.comparisons = {
        "traditional": ComparisonReport(
            baseline_scheme="traditional",
            samples=pair_runs(anc_runs, traditional_runs),
        ),
    }
    report.ber_cdf = ber_cdf(anc_runs, include_losses=True)
    report.extras = {
        "mean_overlap": float(np.mean([r.mean_overlap for r in anc_runs])),
        "anc_delivery_ratio": float(np.mean([r.delivery_ratio for r in anc_runs])),
    }
    return report
