"""Figure 10: the "X" topology.

Same structure as the Alice–Bob experiment, but the two flows are
unidirectional and cross at the centre router, and the destinations only
know the interfering packet because they *overheard* it during the
concurrent uplink slot.  Overhearing occasionally fails (the other sender's
weak cross-interference plus noise), which is why the paper's gains are a
few points lower than Alice–Bob's and the BER CDF has a heavier tail
(packets lost to failed overhearing).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.channel.impairments import IMPAIRMENT_STREAM, apply_impairments
from repro.channel.interference import OverlapModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine, default_engine
from repro.metrics.ber import ber_cdf
from repro.metrics.gain import pair_runs
from repro.metrics.report import ComparisonReport, ExperimentReport
from repro.network.flows import Flow
from repro.network.topologies import N1, N2, N3, N4, N5, ChannelConditions, x_topology
from repro.protocols.anc import ANCRelayProtocol, default_min_offset
from repro.protocols.base import RunResult
from repro.protocols.cope import CopeRelayProtocol
from repro.protocols.traditional import TraditionalRouting


def run_x_topology_trial(
    cfg: ExperimentConfig, run_index: int
) -> Tuple[RunResult, RunResult, RunResult]:
    """Execute one Fig. 10 testbed run under all three schemes.

    Picklable engine trial; all randomness is keyed by ``run_index`` so
    workers can execute trials in any order.  Returns the
    ``(traditional, cope, anc)`` run results.
    """
    topo_rng = cfg.run_rng(run_index, stream=10)
    snr_db = cfg.draw_run_snr(topo_rng)
    mean_overlap = cfg.draw_run_overlap(topo_rng)
    conditions = ChannelConditions(snr_db=snr_db)
    topology = x_topology(conditions, topo_rng)
    apply_impairments(
        topology, cfg.impairments, cfg.run_rng(run_index, stream=IMPAIRMENT_STREAM)
    )
    flow_a = Flow(N1, N4, cfg.packets_per_run)
    flow_b = Flow(N3, N2, cfg.packets_per_run)

    traditional = TraditionalRouting(
        topology,
        [flow_a, flow_b],
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        rng=cfg.run_rng(run_index, stream=11),
        topology_name="x",
    )
    traditional_run = traditional.run()

    cope = CopeRelayProtocol(
        topology,
        N5,
        flow_a,
        flow_b,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        overhearing=True,
        rng=cfg.run_rng(run_index, stream=12),
        topology_name="x",
    )
    cope_run = cope.run()

    anc_rng = cfg.run_rng(run_index, stream=13)
    overlap_model = OverlapModel(
        mean_overlap=mean_overlap,
        jitter=cfg.overlap_jitter,
        min_offset=default_min_offset(),
        rng=anc_rng,
    )
    anc = ANCRelayProtocol(
        topology,
        N5,
        flow_a,
        flow_b,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        redundancy_overhead=cfg.anc_redundancy_overhead,
        overhearing=True,
        overlap_model=overlap_model,
        rng=anc_rng,
        topology_name="x",
    )
    return traditional_run, cope_run, anc.run()


def run_x_topology_experiment(
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> ExperimentReport:
    """Run the Fig. 10 experiment and return its report."""
    cfg = config if config is not None else ExperimentConfig()
    trials = default_engine(engine).run_batched(
        "fig10_x_topology", run_x_topology_trial, cfg, range(cfg.runs),
        batch_size=cfg.engine_batch_size,
    )
    traditional_runs: List[RunResult] = [t[0] for t in trials]
    cope_runs: List[RunResult] = [t[1] for t in trials]
    anc_runs: List[RunResult] = [t[2] for t in trials]

    report = ExperimentReport(name="fig10_x_topology", anc_runs=anc_runs)
    report.baseline_runs = {"traditional": traditional_runs, "cope": cope_runs}
    report.comparisons = {
        "traditional": ComparisonReport(
            baseline_scheme="traditional",
            samples=pair_runs(anc_runs, traditional_runs),
        ),
        "cope": ComparisonReport(
            baseline_scheme="cope",
            samples=pair_runs(anc_runs, cope_runs),
        ),
    }
    report.ber_cdf = ber_cdf(anc_runs, include_losses=True)
    report.extras = {
        "mean_overlap": float(np.mean([r.mean_overlap for r in anc_runs])),
        "anc_delivery_ratio": float(np.mean([r.delivery_ratio for r in anc_runs])),
    }
    return report
