"""Scenario: ANC robustness versus carrier frequency offset (§6).

The paper's amplitude-separation step *relies* on the relative carrier
frequency offset between the two unsynchronised senders: the offset makes
their phase difference sweep the circle, which is what justifies the
random-phase energy statistics of Eqs. 5–6 and keeps the Eq. 7–8 matching
well conditioned.  This sweep measures how the end-to-end exchange
behaves as the per-sender offset Δω grows from zero (phase-locked
oscillators, the adversarial case for the statistics) through the small
residual offsets of real radios to offsets large enough to stress the
pilot-based channel estimation.

Each trial is an Alice–Bob exchange (a 2-leaf star around the router)
whose topology, operating SNR and overlap are drawn *independently of the
sweep value*, so every Δω point of a run sees the same radio environment
— the axis isolates the oscillator offset.  The offset itself is applied
through the impairment subsystem
(:func:`repro.channel.impairments.apply_impairments`): oscillators are
assigned deterministically (no draw), and in this three-node exchange
the two colliding senders differ by exactly ``Δω`` — the tabulated axis
*is* the relative offset.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.channel.impairments import apply_impairments
from repro.channel.interference import OverlapModel
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import (
    ScenarioSpec,
    register_scenario,
    summarize_run,
)
from repro.network.flows import Flow
from repro.network.generator import generate_star
from repro.network.topologies import ALICE, BOB, RELAY, ChannelConditions
from repro.protocols.anc import ANCRelayProtocol, default_min_offset
from repro.protocols.traditional import TraditionalRouting

#: Base RNG stream for this scenario (disjoint from every other family).
_STREAM_BASE = 800


def run_cfo_sweep_trial(
    cfg: ExperimentConfig, key: Tuple[float, int]
) -> Dict[str, Dict[str, float]]:
    """Execute one (sender_cfo, run) cell of the CFO robustness sweep.

    Picklable engine trial.  The topology substream does not depend on
    the sweep value, so all Δω points of one run share a radio
    environment; only the impairment differs.  Any fading the caller's
    ``cfg.impairments`` requests is kept, letting CFO and fading compose.
    """
    sender_cfo, run = float(key[0]), int(key[1])
    if cfg.impairments.sender_cfo != 0.0:
        raise ConfigurationError(
            "cfo_sweep sweeps the per-sender CFO itself; leave --cfo at 0 "
            "(a configured value would be discarded but still recorded in "
            "the result's config snapshot). --fading composes normally."
        )
    topo_rng = cfg.run_rng(run, stream=_STREAM_BASE)
    snr_db = cfg.draw_run_snr(topo_rng)
    mean_overlap = cfg.draw_run_overlap(topo_rng)
    conditions = ChannelConditions(snr_db=snr_db)
    topology = generate_star(conditions, topo_rng, leaves=2, hub=RELAY)
    impairments = replace(cfg.impairments, sender_cfo=sender_cfo)
    apply_impairments(
        topology, impairments, cfg.run_rng(run, stream=_STREAM_BASE + 6)
    )
    flow_a = Flow(ALICE, BOB, cfg.packets_per_run)
    flow_b = Flow(BOB, ALICE, cfg.packets_per_run)

    traditional = TraditionalRouting(
        topology,
        [flow_a, flow_b],
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        rng=cfg.run_rng(run, stream=_STREAM_BASE + 1),
        topology_name="alice_bob",
    ).run()

    anc_rng = cfg.run_rng(run, stream=_STREAM_BASE + 3)
    anc = ANCRelayProtocol(
        topology,
        RELAY,
        flow_a,
        flow_b,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        redundancy_overhead=cfg.anc_redundancy_overhead,
        overlap_model=OverlapModel(
            mean_overlap=mean_overlap,
            jitter=cfg.overlap_jitter,
            min_offset=default_min_offset(),
            rng=anc_rng,
        ),
        rng=anc_rng,
        topology_name="alice_bob",
    ).run()

    return {"anc": summarize_run(anc), "traditional": summarize_run(traditional)}


CFO_SWEEP = register_scenario(
    ScenarioSpec(
        name="cfo_sweep",
        description="ANC BER/throughput robustness vs per-sender carrier "
        "frequency offset on the Alice-Bob exchange (the §6 mechanism)",
        topology="star",
        sweep_axis="cfo",
        sweep_values=(0.0, 0.005, 0.01, 0.02, 0.05, 0.1),
        quick_sweep_values=(0.0, 0.02, 0.1),
        schemes=("anc", "traditional"),
        trial_fn=run_cfo_sweep_trial,
    )
)
