"""The scenario registry: N-node workloads declared as data.

A :class:`ScenarioSpec` describes a whole experiment family in one
declaration — which topology generator builds the network, what the sweep
axis is, which values it takes, which schemes compete — plus a picklable
trial function that executes one ``(sweep value, run index)`` cell.  The
generic driver :func:`run_scenario` then provides everything the figure
runners get from PR 1's runner registry for free:

* **engine parallelism / caching** — every cell of the
  ``sweep value x run`` grid is one
  :class:`~repro.experiments.engine.ExperimentEngine` trial, so
  ``--workers`` fans the whole grid out and ``--resume`` caches it;
* **deterministic aggregation** — cells are keyed by ``(value, run)``
  and re-ordered after execution, so parallel runs render byte-identical
  summary tables;
* **CLI dispatch** — ``python -m repro.cli run <scenario>`` resolves the
  name through :data:`SCENARIOS` exactly like figure names resolve
  through :data:`~repro.experiments.runner.RUNNERS`.

See ``docs/SCENARIOS.md`` for the authoring guide (anatomy of a spec, the
topology generator API, the scheduler contract, and a worked example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine, default_engine
from repro.protocols.base import RunResult

#: Signature of a scenario trial: ``(config, (sweep_value, run_index),
#: **params) -> {scheme: {metric: float}}``.  Must be a picklable
#: top-level callable so the engine can dispatch it to process workers.
ScenarioTrialFn = Callable[..., Dict[str, Dict[str, float]]]


def summarize_run(result: RunResult) -> Dict[str, float]:
    """Flatten one protocol run into the plain floats a trial returns.

    Engine trials must return picklable, version-stable data; scenario
    trials therefore reduce each :class:`RunResult` to its headline
    numbers instead of shipping the full object across processes.
    """
    return {
        "throughput": float(result.throughput),
        "delivered": float(result.packets_delivered),
        "offered": float(result.packets_offered),
        "mean_ber": float(result.mean_ber),
        "slots": float(result.slots_used),
    }


def combine_runs(results: Sequence[RunResult]) -> Dict[str, float]:
    """Aggregate several protocol runs that share one scenario cell.

    The mesh scenario executes one protocol instance per ANC pair plus
    one for the routed leftovers; their slots are serial in time, so the
    cell's throughput is total useful bits over total air time.
    """
    if not results:
        raise ConfigurationError("cannot combine zero runs")
    air_time = sum(r.air_time_samples for r in results)
    useful = sum(r.useful_bits for r in results)
    bers: List[float] = [b for r in results for b in r.packet_bers]
    return {
        "throughput": float(useful / air_time) if air_time else 0.0,
        "delivered": float(sum(r.packets_delivered for r in results)),
        "offered": float(sum(r.packets_offered for r in results)),
        "mean_ber": float(np.mean(bers)) if bers else 0.0,
        "slots": float(sum(r.slots_used for r in results)),
    }


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario: a sweep declared as data.

    Attributes
    ----------
    name:
        Registry / CLI name (e.g. ``"chain_sweep"``).
    description:
        One-line description shown in ``--help``.
    topology:
        Name of the topology generator in
        :data:`repro.network.generator.GENERATORS` that builds each
        trial's network.
    sweep_axis:
        Human-readable name of the swept parameter (table's first column).
    sweep_values:
        Values the axis takes at the default size.
    quick_sweep_values:
        Values used under ``--quick`` (defaults to ``sweep_values``).
    schemes:
        Scheme names every trial reports, in table-column order; the
        first scheme is the numerator of the rendered gain columns.
    trial_fn:
        Picklable top-level callable executing one ``(value, run)`` cell.
    params:
        Extra keyword arguments passed to every trial (and hashed into
        the engine's cache digest), e.g. the mesh size.
    consumes:
        Names of the config's time-domain traffic knobs
        (``arrival_rate`` / ``sim_duration`` / ``mac_policy``) this
        scenario's trials actually honour.  :func:`run_scenario` raises a
        :class:`ConfigurationError` when the config sets a knob outside
        this set — fixed-trial scenarios would otherwise silently ignore
        it.
    """

    name: str
    description: str
    topology: str
    sweep_axis: str
    sweep_values: Tuple[Any, ...]
    schemes: Tuple[str, ...]
    trial_fn: ScenarioTrialFn
    quick_sweep_values: Optional[Tuple[Any, ...]] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    consumes: Tuple[str, ...] = ()

    def values_for(self, quick: bool) -> Tuple[Any, ...]:
        """The sweep values to run at the requested size."""
        if quick and self.quick_sweep_values is not None:
            return self.quick_sweep_values
        return self.sweep_values


@dataclass
class ScenarioReport:
    """Aggregated scenario results, renderable as a deterministic table.

    Attributes
    ----------
    spec:
        The scenario that produced the results.
    sweep_values:
        The axis values actually run, in order.
    rows:
        Per-value mean metrics: ``rows[value][scheme][metric]`` averaged
        over the runs.
    runs:
        Number of independent runs behind each row.
    """

    spec: ScenarioSpec
    sweep_values: Tuple[Any, ...]
    rows: Dict[Any, Dict[str, Dict[str, float]]]
    runs: int

    def gain(self, value: Any, baseline: str) -> float:
        """Mean throughput of the lead scheme over ``baseline`` at a value."""
        return scenario_gain(self.rows, self.spec.schemes, value, baseline)

    def render(self) -> str:
        """Render the scenario summary table as deterministic plain text."""
        return render_scenario_table(
            name=self.spec.name,
            sweep_axis=self.spec.sweep_axis,
            schemes=self.spec.schemes,
            sweep_values=self.sweep_values,
            rows=self.rows,
            runs=self.runs,
        )

    def to_result(self, config: Optional[ExperimentConfig] = None) -> "ExperimentResult":
        """Flatten the report into a typed, serializable result object."""
        from repro.results.adapters import scenario_result

        return scenario_result(self, config if config is not None else ExperimentConfig())


def scenario_gain(
    rows: Mapping[Any, Mapping[str, Mapping[str, float]]],
    schemes: Sequence[str],
    value: Any,
    baseline: str,
) -> float:
    """Mean throughput of the lead scheme over ``baseline`` at one value."""
    lead = schemes[0]
    base = rows[value][baseline]["throughput"]
    if base == 0.0:
        return float("inf")
    return rows[value][lead]["throughput"] / base


def render_scenario_table(
    name: str,
    sweep_axis: str,
    schemes: Sequence[str],
    sweep_values: Sequence[Any],
    rows: Mapping[Any, Mapping[str, Mapping[str, float]]],
    runs: int,
) -> str:
    """Render a scenario's summary table from its aggregated row mapping.

    Shared by :meth:`ScenarioReport.render` and the structured-results
    renderer (:mod:`repro.results.render`), so the text view stays
    byte-identical whichever path produced the numbers.
    """
    lead = schemes[0]
    baselines = [s for s in schemes if s != lead]
    labels = [sweep_axis]
    labels += [f"{s} thpt" for s in schemes]
    labels += [f"{lead}/{b}" for b in baselines]
    labels += [f"{lead} dlvr", f"{lead} BER"]
    widths = [max(8, len(label)) for label in labels]
    lines = [f"=== scenario {name} ==="]
    lines.append(
        " | ".join(f"{label:>{w}}" for label, w in zip(labels, widths))
    )
    lines.append("-" * len(lines[1]))
    for value in sweep_values:
        row = rows[value]
        cells = [f"{value!s}"]
        cells += [f"{row[s]['throughput']:.4f}" for s in schemes]
        cells += [f"{scenario_gain(rows, schemes, value, b):.2f}" for b in baselines]
        delivery = (
            row[lead]["delivered"] / row[lead]["offered"]
            if row[lead]["offered"]
            else 0.0
        )
        cells += [f"{delivery:.3f}", f"{row[lead]['mean_ber']:.4f}"]
        lines.append(
            " | ".join(f"{cell:>{w}}" for cell, w in zip(cells, widths))
        )
    lines.append(f"runs per point: {runs}")
    return "\n".join(lines)


def run_scenario(
    spec: ScenarioSpec,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
    quick: bool = False,
) -> ScenarioReport:
    """Execute every cell of a scenario's sweep grid through the engine.

    Each ``(sweep value, run index)`` pair is one engine trial, so worker
    fan-out and disk caching apply to the whole grid at once; results are
    keyed and re-ordered so the report is identical however they ran.
    """
    cfg = config if config is not None else ExperimentConfig()
    unconsumed = sorted(set(cfg.sim_overrides()) - set(spec.consumes))
    if unconsumed:
        raise ConfigurationError(
            f"scenario {spec.name!r} ignores the traffic knob(s) "
            f"{', '.join(unconsumed)}; they apply only to time-domain "
            "scenarios such as offered_load_sweep / queueing_delay"
        )
    values = spec.values_for(quick)
    keys = [(value, run) for value in values for run in range(cfg.runs)]
    cells = default_engine(engine).run_batched(
        f"scenario_{spec.name}", spec.trial_fn, cfg, keys,
        params=spec.params, batch_size=cfg.engine_batch_size,
    )

    rows: Dict[Any, Dict[str, Dict[str, float]]] = {}
    for value in values:
        value_cells = [
            cell for (cell_value, _), cell in zip(keys, cells) if cell_value == value
        ]
        row: Dict[str, Dict[str, float]] = {}
        for scheme in spec.schemes:
            metrics = sorted(value_cells[0][scheme])
            row[scheme] = {
                metric: float(np.mean([cell[scheme][metric] for cell in value_cells]))
                for metric in metrics
            }
        rows[value] = row
    return ScenarioReport(spec=spec, sweep_values=values, rows=rows, runs=cfg.runs)


#: Registry of every scenario, keyed by CLI name.  Populated by the
#: scenario modules at import time via :func:`register_scenario`.
SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add one scenario to the registry (idempotent per name)."""
    SCENARIOS[spec.name] = spec
    return spec


def available_scenarios() -> List[str]:
    """Names of every registered scenario, in registration order."""
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one scenario by CLI name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}"
        ) from None
