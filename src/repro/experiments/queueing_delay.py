"""Scenario: queueing delay and goodput versus traffic burstiness.

A companion to :mod:`repro.experiments.offered_load`: instead of sweeping
*how much* traffic arrives, this sweeps *how* it arrives — smooth CBR,
memoryless Poisson, or on/off bursts — at one fixed offered load, and
reports mean and 95th-percentile end-to-end delay next to goodput and
drop rate.  Queueing theory says the ordering: CBR sees almost no
queueing (deterministic interarrivals at an underloaded server), Poisson
pays the classic M/G/1 waiting time, and bursty on/off traffic — same
long-run rate, much higher variance — overflows the finite queues during
bursts and stretches the delay tail.  The per-scheme comparison shows
how much of ANC's capacity advantage survives as a *latency* advantage:
its two-transmissions-per-exchange pipeline drains queues faster than
COPE's three or traditional's four.

All of the config's traffic knobs are honoured here: ``arrival_rate``
(default 0.6 packets per frame-time), ``sim_duration`` and
``mac_policy``.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.offered_load import simulate_schemes
from repro.experiments.scenarios import ScenarioSpec, register_scenario
from repro.sim.traffic import TRAFFIC_MODELS

#: Base RNG stream for this scenario (distinct from every other scenario's).
_STREAM_BASE = 700

#: Offered load when the config leaves ``arrival_rate`` at its
#: "use the scenario default" value of 0.
DEFAULT_ARRIVAL_RATE = 0.6


def run_queueing_delay_trial(
    cfg: ExperimentConfig, key: Tuple[str, int]
) -> Dict[str, Dict[str, float]]:
    """Execute one (traffic model, run) cell of the burstiness sweep.

    Picklable engine trial; randomness derives from the config seed, the
    traffic model and the run index, so the cell is independent of
    execution order and worker placement.
    """
    model, run = str(key[0]), int(key[1])
    rate = cfg.arrival_rate if cfg.arrival_rate > 0 else DEFAULT_ARRIVAL_RATE
    stream = _STREAM_BASE + TRAFFIC_MODELS.index(model)
    return simulate_schemes(
        cfg, arrival_rate=rate, run=run, stream=stream, traffic_model=model
    )


QUEUEING_DELAY = register_scenario(
    ScenarioSpec(
        name="queueing_delay",
        description="mean / p95 queueing delay vs traffic burstiness "
        "(CBR, Poisson, on/off bursts) at fixed offered load",
        topology="star",
        sweep_axis="traffic",
        sweep_values=TRAFFIC_MODELS,
        schemes=("anc", "cope", "traditional"),
        trial_fn=run_queueing_delay_trial,
        consumes=("arrival_rate", "sim_duration", "mac_policy"),
    )
)
