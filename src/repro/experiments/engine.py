"""Parallel, resumable execution engine for Monte-Carlo experiments.

Every figure-reproduction runner repeats an independent *trial* — one
testbed run, one sweep point — ``N`` times and aggregates the results.
Because each trial derives all of its randomness from
:meth:`~repro.experiments.config.ExperimentConfig.run_rng` (a dedicated
``np.random.Generator`` substream seeded by the master seed and the trial
index), trials are independent of execution order and of the process that
executes them.  The :class:`ExperimentEngine` exploits exactly that
property:

* **Parallelism** — with ``workers > 1`` trials fan out across a
  :class:`concurrent.futures.ProcessPoolExecutor`; results are re-ordered
  by trial key afterwards, so the output is *bit-identical* to serial
  execution (``workers=1``), just faster.
* **Resumability** — with a ``cache_dir`` set, every completed trial is
  pickled to disk under a digest of (library version, experiment name,
  trial function, config fields, sweep parameters).  A re-run of an
  interrupted paper-scale sweep loads the finished trials from the cache
  and only executes the missing ones.  Changing any config field (or the
  sweep grid) changes the digest, so results from a different
  configuration are never reused.  The digest cannot see arbitrary code
  edits, though — only the package version — so after changing
  simulation code in place, clear the cache directory (or bump
  ``repro.__version__``) before resuming.

The engine is deliberately generic: a trial function is any picklable
top-level callable ``trial_fn(config, key, **params)``, and a trial key is
any int/float/str/tuple that identifies the trial (a run index, an SNR
value, ...).  All seven runners in :mod:`repro.experiments` execute
through :meth:`ExperimentEngine.map`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import asdict, dataclass, is_dataclass
from multiprocessing.shared_memory import SharedMemory
from pathlib import Path
from typing import Any, Callable, ContextManager, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

import repro
from repro.exceptions import BackendError, ConfigurationError

#: Signature every trial function must satisfy: ``(config, key, **params)``.
TrialFn = Callable[..., Any]

#: Accepted trial-key types (must be stable under ``repr`` for cache slugs).
TrialKey = Union[int, float, str, tuple]

#: Where ``--resume`` caches trials when no explicit directory is given.
DEFAULT_CACHE_DIR = Path(".anc_cache")

#: Sentinel distinguishing "not in the cache" from a cached ``None`` result.
_CACHE_MISS = object()

_SLUG_SANITISER = re.compile(r"[^A-Za-z0-9_.+-]+")

#: Arrays at or above this many bytes ride to workers through
#: :mod:`multiprocessing.shared_memory` instead of being pickled into the
#: task payload.  Below it, the segment bookkeeping costs more than the
#: pickle copy it saves.
_SHM_MIN_BYTES = 1 << 16


@dataclass(frozen=True)
class _SharedArrayRef:
    """Picklable stand-in for an ndarray parked in a shared-memory segment.

    Crossing the process boundary this is all that gets pickled — name,
    shape, dtype string — instead of the array's bytes; the worker
    re-materializes a read-only view onto the same physical pages.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


def _untrack_shared_memory(shm: SharedMemory) -> None:
    """Detach a worker-side attachment from the resource tracker.

    The parent process owns segment lifetime (create *and* unlink); a
    worker that merely attaches must not let its resource tracker also
    claim the segment, or interpreter shutdown double-unlinks and logs
    spurious leak warnings.  Best-effort: tracker internals are private,
    and failing to untrack is cosmetic, not incorrect.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


def _export_shared_arrays(
    kwargs: Dict[str, Any],
) -> Tuple[Dict[str, Any], List[SharedMemory]]:
    """Move large array params into shared memory for zero-copy handoff.

    Returns the kwargs with each exported ndarray replaced by a
    :class:`_SharedArrayRef`, plus the created segments (the caller must
    close *and* unlink them once every worker is done — including when a
    worker crashes).  Small arrays, object arrays and non-array values
    pass through untouched.
    """
    exported: Dict[str, Any] = {}
    segments: List[SharedMemory] = []
    for name, value in kwargs.items():
        if (
            isinstance(value, np.ndarray)
            and not value.dtype.hasobject
            and value.nbytes >= _SHM_MIN_BYTES
        ):
            shm = SharedMemory(create=True, size=value.nbytes)
            view: np.ndarray = np.ndarray(value.shape, dtype=value.dtype, buffer=shm.buf)
            view[...] = value
            segments.append(shm)
            exported[name] = _SharedArrayRef(shm.name, value.shape, value.dtype.str)
        else:
            exported[name] = value
    return exported, segments


def _resolve_shared_arrays(
    kwargs: Dict[str, Any],
) -> Tuple[Dict[str, Any], List[SharedMemory]]:
    """Worker-side inverse of :func:`_export_shared_arrays`.

    Replaces every :class:`_SharedArrayRef` with a read-only ndarray view
    onto the attached segment.  The returned handles must stay open for
    as long as the views are in use (the views alias the mapping).
    """
    resolved = dict(kwargs)
    handles: List[SharedMemory] = []
    for name, value in kwargs.items():
        if isinstance(value, _SharedArrayRef):
            shm = SharedMemory(name=value.name)
            _untrack_shared_memory(shm)
            handles.append(shm)
            view: np.ndarray = np.ndarray(value.shape, dtype=np.dtype(value.dtype), buffer=shm.buf)
            view.setflags(write=False)
            resolved[name] = view
    return resolved, handles


def _backend_scope(config: Any) -> ContextManager[Any]:
    """Ambient-backend scope for one trial block, from ``config.backend``.

    Configs without a ``backend`` field (or with ``None``) run in
    whatever backend is already ambient — a no-op scope.  This is how a
    config's backend choice reaches worker processes: the name travels
    inside the pickled config, and the block executor re-enters the scope
    on the other side.
    """
    backend_name = getattr(config, "backend", None)
    if not isinstance(backend_name, str):
        return nullcontext()
    from repro.backend import use_backend

    return use_backend(backend_name)


def _execute_trial_block(
    trial_fn: "TrialFn", config: Any, keys: List["TrialKey"], kwargs: Dict[str, Any]
) -> List[Any]:
    """Execute one batch of trials in order; the unit ``run_batched`` ships.

    Top-level (hence picklable) so a whole block crosses the process
    boundary as one task: one submit, one pickle round-trip and one
    future per ``batch_size`` trials instead of per trial.  Results come
    back in ``keys`` order, so batching cannot reorder anything.  Any
    shared-memory array refs in ``kwargs`` are resolved to views here and
    released when the block finishes, and the config's compute backend
    (if it names one) is made ambient for the block.
    """
    resolved, handles = _resolve_shared_arrays(kwargs)
    try:
        with _backend_scope(config):
            return [trial_fn(config, key, **resolved) for key in keys]
    finally:
        del resolved  # drop array views before closing their mappings
        for handle in handles:
            handle.close()


def _key_token(key: TrialKey) -> str:
    """Injective text encoding of a trial key (hashed into the slug).

    Unlike the display slug, this encoding never collides: values are
    type-tagged (``1`` vs ``"1"``), strings are length-prefixed (so tuple
    joins cannot be forged by embedded separators), and tuples keep their
    structure.
    """
    if isinstance(key, bool):
        raise ConfigurationError("trial keys must be int, float, str or tuple")
    if isinstance(key, int):
        return f"i{key}"
    if isinstance(key, float):
        return f"f{key!r}"
    if isinstance(key, str):
        return f"s{len(key)}:{key}"
    if isinstance(key, tuple):
        return "t(" + ",".join(_key_token(part) for part in key) + ")"
    raise ConfigurationError("trial keys must be int, float, str or tuple")


def _key_base(key: TrialKey) -> str:
    """Human-readable (possibly colliding) base of a cache-file name."""
    if isinstance(key, int):
        return f"{key:08d}"
    if isinstance(key, tuple):
        return "t_" + "_".join(_key_base(part) for part in key)
    text = repr(key) if isinstance(key, float) else str(key)
    return _SLUG_SANITISER.sub("_", text) or "_"


def _key_slug(key: TrialKey) -> str:
    """Filesystem-safe, unique-per-key name for one trial's cache file.

    ``<readable base>-<8 hex digest>``: the base keeps cache directories
    human-navigable (int keys stay zero-padded, hence sorted), while the
    digest of the injective :func:`_key_token` encoding makes the name
    collision-free — ``"a/b"`` vs ``"a_b"``, ``("a", "b")`` vs
    ``("a_b",)`` and ``1`` vs ``"00000001"`` all sanitize to the same
    base but hash apart, so resume can never serve one key's cached
    result for another.  The base is truncated to bound file-name length;
    uniqueness rides entirely on the digest.
    """
    token = _key_token(key)
    digest = hashlib.sha256(token.encode("utf-8")).hexdigest()[:8]
    return f"{_key_base(key)[:96]}-{digest}"


def _pop_digest_neutral_backend(config_repr: Dict[str, Any]) -> None:
    """Drop a ``backend`` config field from the digest view when neutral.

    The same rule as ``batch_size``: a backend the differential suite
    certifies equivalent to the scalar reference (``numpy``, ``numba``)
    is an execution knob, so caches survive switching it.  A
    non-neutral backend (``float32-fast``) — or any unrecognized value —
    stays in and forks the digest, the conservative direction.
    """
    name = config_repr.get("backend")
    if not isinstance(name, str):
        return
    from repro.backend import get_backend

    try:
        neutral = get_backend(name).digest_neutral
    except BackendError:
        return
    if neutral:
        config_repr.pop("backend", None)


@dataclass(frozen=True)
class EngineStats:
    """Bookkeeping of one :meth:`ExperimentEngine.map` invocation.

    Attributes
    ----------
    total_trials:
        Number of trials requested.
    executed_trials:
        Trials actually computed in this invocation.
    cached_trials:
        Trials satisfied from the on-disk cache (``resume``).
    workers:
        Worker processes the engine was configured with.
    digest:
        The cache digest of (experiment, trial function, config, params).
    """

    total_trials: int
    executed_trials: int
    cached_trials: int
    workers: int
    digest: str
    batch_size: int = 1
    #: Wall-clock seconds the invocation took (cache loading included).
    elapsed_seconds: float = 0.0


class ExperimentEngine:
    """Fans independent experiment trials out across process workers.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) executes trials
        serially in-process — the reference behaviour every parallel run
        must be bit-identical to.
    cache_dir:
        When set, completed trials are pickled to
        ``<cache_dir>/<digest>/<key>.pkl`` as soon as they finish, and
        later invocations with the same digest load them instead of
        recomputing — this is what makes interrupted paper-scale sweeps
        resumable.  ``None`` (the default) disables all disk I/O.
    batch_size:
        Default number of trials shipped to a worker as one block (see
        :meth:`run_batched`).  ``1`` (the default) dispatches trial by
        trial — the reference behaviour.  Batching only amortizes
        dispatch overhead; results and the per-trial cache layout are
        identical at every batch size.
    shared_memory:
        When ``True`` (the default), large ndarray ``params`` cross the
        process boundary as :mod:`multiprocessing.shared_memory` segments
        instead of being pickled into every task — zero-copy handoff for
        trial-block waveform arrays.  Results are bit-identical either
        way (workers see the same values, read-only); the knob exists for
        differential testing and as an escape hatch.  Segments are always
        unlinked by the parent, worker crashes included.
    """

    def __init__(
        self,
        workers: int = 1,
        cache_dir: Optional[Union[str, Path]] = None,
        batch_size: int = 1,
        shared_memory: bool = True,
    ) -> None:
        """See the class docstring for the constructor-knob semantics."""
        if int(workers) < 1:
            raise ConfigurationError("workers must be a positive integer")
        if int(batch_size) < 1:
            raise ConfigurationError("batch_size must be a positive integer")
        self.workers = int(workers)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.batch_size = int(batch_size)
        self.shared_memory = bool(shared_memory)
        #: Segment names created by the most recent parallel :meth:`map`
        #: (diagnostics/tests: each must be unlinked once the call ends).
        self._last_shm_names: List[str] = []
        #: Stats of the most recent :meth:`map` call (``None`` before any).
        self.last_stats: Optional[EngineStats] = None
        #: Stats of every :meth:`map` call this engine executed, in order.
        #: The structured-results pipeline slices this log to attach the
        #: cache/timing metadata of exactly one experiment to its result
        #: (see :func:`repro.results.adapters.attach_engine_meta`).
        self.stats_log: List[EngineStats] = []

    # ------------------------------------------------------------------
    # Cache keying
    # ------------------------------------------------------------------
    @staticmethod
    def task_digest(
        experiment: str,
        trial_fn: TrialFn,
        config: Any,
        params: Optional[Mapping[str, Any]] = None,
    ) -> str:
        """Stable digest identifying one (experiment, config, params) task.

        Any change to the library version, the experiment name, the trial
        function's qualified name, a config field, or a sweep parameter
        yields a different digest, so cached trials can never leak across
        configurations (in-place code edits within one version are the
        one thing it cannot detect — see the module docstring).

        Two classes of config field are deliberately excluded: execution
        knobs the differential suite proves result-neutral
        (``batch_size``, and ``backend`` whenever the named backend is
        digest-neutral — ``float32-fast`` is not, and forks the digest).
        Configs that are neither snapshot-bearing, nor dataclasses, nor
        plainly JSON-serializable are rejected with
        :class:`~repro.exceptions.ConfigurationError`: silently digesting
        their ``repr`` would bake memory addresses into the digest and
        resume would never hit.
        """
        snapshot = getattr(config, "snapshot", None)
        if callable(snapshot):
            # Configs that curate their own JSON view (ExperimentConfig
            # omits disabled impairments so old digests stay valid) are
            # digested through it.
            config_repr: Any = dict(snapshot())
            config_repr.pop("batch_size", None)
            _pop_digest_neutral_backend(config_repr)
        elif is_dataclass(config) and not isinstance(config, type):
            config_repr = asdict(config)
            # Execution knobs that provably do not change trial results
            # (the differential suite enforces this for batch_size) stay
            # out of the digest so caches survive changing them.
            config_repr.pop("batch_size", None)
            _pop_digest_neutral_backend(config_repr)
        else:
            try:
                json.dumps(config)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"cannot build a stable cache digest for config of type "
                    f"{type(config).__name__}: it is not a dataclass, has no "
                    "snapshot() method, and is not JSON-serializable (its repr "
                    "would embed memory addresses, so resume would never hit)"
                ) from None
            config_repr = config
        payload = {
            "version": getattr(repro, "__version__", "0"),
            "experiment": experiment,
            "trial_fn": f"{trial_fn.__module__}.{trial_fn.__qualname__}",
            "config": config_repr,
            "params": dict(params) if params else {},
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]

    # ------------------------------------------------------------------
    # Cache I/O
    # ------------------------------------------------------------------
    def _trial_path(self, digest: str, key: TrialKey) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / digest / f"{_key_slug(key)}.pkl"

    @staticmethod
    def _load_cached(path: Optional[Path]) -> Any:
        """Load one cached trial; returns :data:`_CACHE_MISS` if unavailable.

        The sentinel (rather than ``None``) keeps trials whose legitimate
        result is ``None`` cacheable.  Any unpickling failure — torn
        write, garbled bytes, a class that no longer exists — counts as a
        miss and the trial is recomputed.
        """
        if path is None or not path.is_file():
            return _CACHE_MISS
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            return _CACHE_MISS

    @staticmethod
    def _store_cached(path: Optional[Path], result: Any) -> None:
        """Atomically persist one completed trial (write-temp-then-rename)."""
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def map(
        self,
        experiment: str,
        trial_fn: TrialFn,
        config: Any,
        trial_keys: Iterable[TrialKey],
        params: Optional[Mapping[str, Any]] = None,
        batch_size: Optional[int] = None,
    ) -> List[Any]:
        """Execute ``trial_fn(config, key, **params)`` for every key.

        Results are returned in ``trial_keys`` order regardless of
        completion order, worker count, batch size, or cache hits, which
        is what guarantees parallel runs aggregate identically to serial
        ones.

        Parameters
        ----------
        experiment:
            Name of the experiment (part of the cache digest).
        trial_fn:
            Picklable top-level callable executing one trial.  It must
            draw all randomness from generators seeded by ``config`` and
            ``key`` (e.g. :meth:`ExperimentConfig.run_rng`) — never from
            global state — or parallel execution would not be
            reproducible.
        config:
            Passed verbatim as the first argument; its fields are part of
            the cache digest.
        trial_keys:
            Keys identifying the trials (run indices, sweep points, ...).
        params:
            Extra keyword arguments passed to every trial; also part of
            the cache digest (e.g. the sweep grid).
        batch_size:
            Trials per dispatched block; ``None`` uses the engine's
            configured default.  The block is purely an execution unit —
            each trial is still cached under its own key, so a sweep
            interrupted mid-block resumes at per-trial granularity and a
            cache written at one batch size is reused at any other.
        """
        started = time.perf_counter()
        keys = list(trial_keys)
        if len(set(map(_key_slug, keys))) != len(keys):
            raise ConfigurationError("trial keys must be unique")
        effective_batch = self.batch_size if batch_size is None else int(batch_size)
        if effective_batch < 1:
            raise ConfigurationError("batch_size must be a positive integer")
        kwargs = dict(params) if params else {}
        digest = self.task_digest(experiment, trial_fn, config, params)

        results: Dict[str, Any] = {}
        pending: List[TrialKey] = []
        for key in keys:
            cached = self._load_cached(self._trial_path(digest, key))
            if cached is not _CACHE_MISS:
                results[_key_slug(key)] = cached
            else:
                pending.append(key)

        blocks = [
            pending[start : start + effective_batch]
            for start in range(0, len(pending), effective_batch)
        ]
        if self.workers == 1 or len(blocks) <= 1:
            # Serial execution gains nothing from blocks (no pickling or
            # future bookkeeping to amortize), so keep the per-trial
            # execute-then-persist loop: an interruption never loses a
            # completed trial from the resume cache.
            with _backend_scope(config):
                for key in pending:
                    result = trial_fn(config, key, **kwargs)
                    self._store_cached(self._trial_path(digest, key), result)
                    results[_key_slug(key)] = result
        else:
            ship_kwargs = kwargs
            shm_segments: List[SharedMemory] = []
            if self.shared_memory:
                ship_kwargs, shm_segments = _export_shared_arrays(kwargs)
            self._last_shm_names = [segment.name for segment in shm_segments]
            try:
                max_workers = min(self.workers, len(blocks))
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    futures = {
                        pool.submit(
                            _execute_trial_block, trial_fn, config, block, ship_kwargs
                        ): block
                        for block in blocks
                    }
                    for future in as_completed(futures):
                        block = futures[future]
                        # Persist incrementally so an interruption after this
                        # point never re-runs this block's trials.
                        for key, result in zip(block, future.result()):
                            self._store_cached(self._trial_path(digest, key), result)
                            results[_key_slug(key)] = result
            finally:
                # The parent owns segment lifetime: close and unlink even
                # when a worker crashed or the pool broke, or the segments
                # would outlive the run in /dev/shm.
                for segment in shm_segments:
                    segment.close()
                    try:
                        segment.unlink()
                    except FileNotFoundError:  # pragma: no cover - defensive
                        pass

        self.last_stats = EngineStats(
            total_trials=len(keys),
            executed_trials=len(pending),
            cached_trials=len(keys) - len(pending),
            workers=self.workers,
            digest=digest,
            batch_size=effective_batch,
            elapsed_seconds=time.perf_counter() - started,
        )
        self.stats_log.append(self.last_stats)
        return [results[_key_slug(key)] for key in keys]

    def run_batched(
        self,
        experiment: str,
        trial_fn: TrialFn,
        config: Any,
        trial_keys: Iterable[TrialKey],
        params: Optional[Mapping[str, Any]] = None,
        batch_size: Optional[int] = None,
    ) -> List[Any]:
        """Execute trials in worker-sized blocks instead of one at a time.

        Identical results to :meth:`map` — only the dispatch unit changes:
        workers receive ``batch_size`` trials per task, which amortizes
        process-pool pickling and future bookkeeping for sweeps whose
        individual trials are short (the regime the batched PHY kernels
        create).  With ``batch_size=None`` the engine's configured default
        applies (the resolution :meth:`map` already performs).  Large
        ndarray ``params`` additionally ride to workers through shared
        memory (see the ``shared_memory`` constructor knob) — zero-copy,
        bit-identical to the pickling path.
        """
        return self.map(
            experiment,
            trial_fn,
            config,
            trial_keys,
            params=params,
            batch_size=batch_size,
        )


def default_engine(engine: Optional[ExperimentEngine]) -> ExperimentEngine:
    """The engine a runner should use: the caller's, or a serial fallback."""
    return engine if engine is not None else ExperimentEngine()
