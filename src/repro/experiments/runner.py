"""Uniform dispatch of the figure-reproduction experiments.

Maps each experiment's CLI name to a :class:`RunnerSpec` — a description
plus a ``run_result(config, engine)`` callable that executes the
experiment through the :class:`~repro.experiments.engine.ExperimentEngine`
and returns a typed :class:`~repro.results.model.ExperimentResult`.  The
:mod:`repro.api` facade, the CLI and the tests all share this registry, so
adding an experiment means registering one spec rather than editing an
``if``-chain.

Plain text is a *view* over the structured result:
``spec.run(config, engine)`` still returns the rendered report (via
:func:`repro.results.render.render_text`, byte-identical to the
pre-results-API output) and is kept as a compatibility shim for callers
that predate the structured pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.capacity_fig7 import render_capacity_table, run_capacity_experiment
from repro.experiments.chain import run_chain_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.experiments.sir_sweep import run_sir_sweep
from repro.experiments.snr_sweep import run_snr_sweep
from repro.experiments.summary import run_summary
from repro.experiments.x_topology import run_x_topology_experiment
from repro.results.adapters import (
    capacity_result,
    experiment_report_result,
    sir_result,
    snr_result,
    summary_result,
)
from repro.results.model import ExperimentResult
from repro.results.render import render_text

__all__ = [
    "RUNNERS",
    "ResultRunnerFn",
    "RunnerFn",
    "RunnerSpec",
    "available_runners",
    "get_runner",
    "render_capacity_table",  # re-export kept for callers of the old module layout
]

#: Signature of one registered experiment: config + engine -> typed result.
ResultRunnerFn = Callable[[ExperimentConfig, Optional[ExperimentEngine]], ExperimentResult]

#: Legacy signature (config + engine -> rendered text); today this is the
#: type of :meth:`RunnerSpec.run`, the deprecated text-view shim.
RunnerFn = Callable[[ExperimentConfig, Optional[ExperimentEngine]], str]


@dataclass(frozen=True)
class RunnerSpec:
    """One experiment the facade, CLI and tests can execute by name.

    Attributes
    ----------
    name:
        The CLI name (e.g. ``"alice-bob"``).
    description:
        One-line description shown in ``--help``, naming the paper figure.
    build:
        Executes the experiment through the given engine and returns its
        typed :class:`~repro.results.model.ExperimentResult`.
    """

    name: str
    description: str
    build: ResultRunnerFn

    def run_result(
        self, config: ExperimentConfig, engine: Optional[ExperimentEngine]
    ) -> ExperimentResult:
        """Execute the experiment and return its structured result."""
        return self.build(config, engine)

    def run(self, config: ExperimentConfig, engine: Optional[ExperimentEngine]) -> str:
        """Deprecated text shim: execute and render the plain-text report.

        Kept so call sites that predate the structured-results pipeline
        keep working; the output is byte-identical to theirs because the
        rendering is a pure view over the result.  New code should call
        :meth:`run_result` (or :func:`repro.api.run`) and render with
        :func:`repro.results.render.render_text` only where text is
        actually needed.
        """
        return render_text(self.run_result(config, engine))


def _build_capacity(
    config: ExperimentConfig, engine: Optional[ExperimentEngine]
) -> ExperimentResult:
    return capacity_result(
        "capacity", run_capacity_experiment(config=config, engine=engine), config
    )


def _build_alice_bob(
    config: ExperimentConfig, engine: Optional[ExperimentEngine]
) -> ExperimentResult:
    return experiment_report_result(
        "alice-bob", run_alice_bob_experiment(config, engine=engine), config
    )


def _build_x(
    config: ExperimentConfig, engine: Optional[ExperimentEngine]
) -> ExperimentResult:
    return experiment_report_result(
        "x", run_x_topology_experiment(config, engine=engine), config
    )


def _build_chain(
    config: ExperimentConfig, engine: Optional[ExperimentEngine]
) -> ExperimentResult:
    return experiment_report_result(
        "chain", run_chain_experiment(config, engine=engine), config
    )


def _build_sir(
    config: ExperimentConfig, engine: Optional[ExperimentEngine]
) -> ExperimentResult:
    points = run_sir_sweep(
        config, packets_per_point=config.packets_per_run, engine=engine
    )
    return sir_result(
        "sir", points, config, params={"packets_per_point": config.packets_per_run}
    )


def _build_snr(
    config: ExperimentConfig, engine: Optional[ExperimentEngine]
) -> ExperimentResult:
    return snr_result("snr", run_snr_sweep(config, engine=engine), config)


def _build_summary(
    config: ExperimentConfig, engine: Optional[ExperimentEngine]
) -> ExperimentResult:
    return summary_result("summary", run_summary(config, engine=engine), config)


#: Registry of every experiment, keyed by CLI name (insertion order is the
#: order the ``--help`` epilogue lists them in).
RUNNERS: Dict[str, RunnerSpec] = {
    spec.name: spec
    for spec in (
        RunnerSpec("capacity", "Fig. 7  — capacity bounds vs SNR", _build_capacity),
        RunnerSpec("alice-bob", "Fig. 9  — Alice-Bob topology", _build_alice_bob),
        RunnerSpec("x", "Fig. 10 — the X topology", _build_x),
        RunnerSpec("chain", "Fig. 12 — chain topology", _build_chain),
        RunnerSpec("sir", "Fig. 13 — BER vs SIR", _build_sir),
        RunnerSpec("snr", "extension — gain and BER vs operating SNR", _build_snr),
        RunnerSpec("summary", "§11.3  — summary of results", _build_summary),
    )
}


def available_runners() -> List[str]:
    """Names of every registered experiment, in registry order."""
    return list(RUNNERS)


def get_runner(name: str) -> RunnerSpec:
    """Look up one experiment by CLI name."""
    try:
        return RUNNERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {', '.join(RUNNERS)}"
        ) from None
