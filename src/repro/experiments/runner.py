"""Uniform dispatch of the figure-reproduction experiments.

Maps each experiment's CLI name to a :class:`RunnerSpec` — a description
plus a ``run(config, engine)`` callable that executes the experiment
through the :class:`~repro.experiments.engine.ExperimentEngine` and
returns its plain-text rendering.  The CLI and tests share this registry,
so adding an experiment means registering one spec rather than editing an
``if``-chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.capacity_fig7 import render_capacity_table, run_capacity_experiment
from repro.experiments.chain import run_chain_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.experiments.sir_sweep import render_sir_table, run_sir_sweep
from repro.experiments.snr_sweep import render_snr_table, run_snr_sweep
from repro.experiments.summary import run_summary
from repro.experiments.x_topology import run_x_topology_experiment

#: Signature of one registered experiment: config + engine -> rendered text.
RunnerFn = Callable[[ExperimentConfig, Optional[ExperimentEngine]], str]


@dataclass(frozen=True)
class RunnerSpec:
    """One experiment the CLI (and tests) can execute by name.

    Attributes
    ----------
    name:
        The CLI name (e.g. ``"alice-bob"``).
    description:
        One-line description shown in ``--help``, naming the paper figure.
    run:
        Executes the experiment through the given engine and returns the
        plain-text report.
    """

    name: str
    description: str
    run: RunnerFn


def _run_capacity(config: ExperimentConfig, engine: Optional[ExperimentEngine]) -> str:
    return render_capacity_table(run_capacity_experiment(config=config, engine=engine))


def _run_alice_bob(config: ExperimentConfig, engine: Optional[ExperimentEngine]) -> str:
    return run_alice_bob_experiment(config, engine=engine).render()


def _run_x(config: ExperimentConfig, engine: Optional[ExperimentEngine]) -> str:
    return run_x_topology_experiment(config, engine=engine).render()


def _run_chain(config: ExperimentConfig, engine: Optional[ExperimentEngine]) -> str:
    return run_chain_experiment(config, engine=engine).render()


def _run_sir(config: ExperimentConfig, engine: Optional[ExperimentEngine]) -> str:
    points = run_sir_sweep(
        config, packets_per_point=config.packets_per_run, engine=engine
    )
    return render_sir_table(points)


def _run_snr(config: ExperimentConfig, engine: Optional[ExperimentEngine]) -> str:
    return render_snr_table(run_snr_sweep(config, engine=engine))


def _run_summary(config: ExperimentConfig, engine: Optional[ExperimentEngine]) -> str:
    return run_summary(config, engine=engine).render()


#: Registry of every experiment, keyed by CLI name (insertion order is the
#: order the ``--help`` epilogue lists them in).
RUNNERS: Dict[str, RunnerSpec] = {
    spec.name: spec
    for spec in (
        RunnerSpec("capacity", "Fig. 7  — capacity bounds vs SNR", _run_capacity),
        RunnerSpec("alice-bob", "Fig. 9  — Alice-Bob topology", _run_alice_bob),
        RunnerSpec("x", "Fig. 10 — the X topology", _run_x),
        RunnerSpec("chain", "Fig. 12 — chain topology", _run_chain),
        RunnerSpec("sir", "Fig. 13 — BER vs SIR", _run_sir),
        RunnerSpec("snr", "extension — gain and BER vs operating SNR", _run_snr),
        RunnerSpec("summary", "§11.3  — summary of results", _run_summary),
    )
}


def available_runners() -> List[str]:
    """Names of every registered experiment, in registry order."""
    return list(RUNNERS)


def get_runner(name: str) -> RunnerSpec:
    """Look up one experiment by CLI name."""
    try:
        return RUNNERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {', '.join(RUNNERS)}"
        ) from None
