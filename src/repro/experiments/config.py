"""Experiment configuration.

One :class:`ExperimentConfig` drives every figure-reproduction runner.  The
defaults are sized for a laptop: 40 runs (like the paper) but far fewer
packets per run than the paper's 1000, because each packet is a full
sample-level simulation.  ``ExperimentConfig.quick()`` shrinks everything
for unit tests and CI; ``ExperimentConfig.paper_scale()`` restores the
published workload for users with time to spare.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.backend import DEFAULT_BACKEND, available_backends
from repro.channel.impairments import ImpairmentConfig
from repro.constants import DEFAULT_ANC_REDUNDANCY_OVERHEAD, PAPER_NUM_RUNS
from repro.exceptions import ConfigurationError
from repro.sim.mac import MAC_POLICIES

#: Default MAC policy — the value at which ``mac_policy`` stays out of
#: :meth:`ExperimentConfig.snapshot`.
DEFAULT_MAC_POLICY = "csma"


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by the figure-reproduction experiments.

    Attributes
    ----------
    runs:
        Number of independent testbed runs (the paper repeats each
        experiment 40 times and plots per-run CDFs).
    packets_per_run:
        Packets per direction per run (the paper uses 1000; the default
        here is smaller because every packet is simulated at sample level).
    payload_bits:
        Payload size of every packet.
    snr_db_range:
        Per-run SNR is drawn uniformly from this range, modelling the
        day-to-day variation of a real deployment in the 20-40 dB regime.
    overlap_range:
        Per-run mean packet overlap is drawn uniformly from this range
        (§11.4 reports an 80 % average with substantial run-to-run spread).
    overlap_jitter:
        Within-run jitter of individual collision offsets.
    ber_acceptance:
        Residual BER that the error-correcting redundancy is assumed able
        to repair; packets above it count as lost.
    anc_redundancy_overhead:
        Extra redundancy charged against ANC throughput (8 % in §11.4).
    chain_redundancy_overhead:
        The chain's residual BER is markedly lower (§11.6), so it needs
        less redundancy.
    seed:
        Master seed; every run derives its own substream from it.
    batch_size:
        Trials handed to an engine worker as one block
        (:meth:`~repro.experiments.engine.ExperimentEngine.run_batched`).
        ``1`` dispatches trial by trial; larger values amortize dispatch
        overhead for short trials.  Purely an execution knob — results
        are identical at every batch size, and it is excluded from the
        engine's cache digest for exactly that reason.  See
        ``docs/PERFORMANCE.md`` for guidance on setting it.
    backend:
        Compute backend for the batched PHY kernels (one of
        :func:`repro.backend.available_backends`).  The engine makes it
        ambient for every trial it executes, in-process and in workers
        alike.  Digest-neutral backends (``numpy``, ``numba``) follow
        the ``batch_size`` rule and stay out of the cache digest;
        ``float32-fast`` is accuracy-gated rather than bit-exact and
        forks the digest.  The default is omitted from :meth:`snapshot`
        so pre-backend digests and golden fixtures stay stable.
    impairments:
        Optional channel impairments (per-sender CFO, stochastic fading)
        applied on top of the baseline flat channel — see
        :class:`~repro.channel.impairments.ImpairmentConfig` and
        ``docs/CHANNELS.md``.  The default disables everything, and a
        disabled config is excluded from :meth:`snapshot`, so
        pre-impairment digests, caches and golden fixtures stay stable.
    arrival_rate:
        Offered load for the time-domain traffic scenarios
        (:mod:`repro.sim`), in packets per frame-time over both
        directions.  ``0`` (the default) lets each scenario use its own
        default and keeps the knob out of :meth:`snapshot`, so existing
        digests and golden fixtures are untouched.  Fixed-trial scenarios
        and the figure runners ignore traffic knobs entirely, so setting
        this for one of them raises a :class:`ConfigurationError` instead
        of silently doing nothing.
    sim_duration:
        Simulated horizon of the traffic scenarios, in frame-times.
        ``0`` (the default) defers to the scenario default and stays out
        of :meth:`snapshot`; the same set-but-unconsumed check as
        ``arrival_rate`` applies.
    mac_policy:
        Medium-access policy of the traffic scenarios — one of
        :data:`repro.sim.mac.MAC_POLICIES` (``"csma"`` contention with
        binary exponential backoff, or the collision-free ``"scheduled"``
        TDMA grid).  The default is omitted from :meth:`snapshot`; the
        same set-but-unconsumed check applies.
    """

    runs: int = PAPER_NUM_RUNS
    packets_per_run: int = 30
    payload_bits: int = 768
    snr_db_range: Tuple[float, float] = (21.0, 29.0)
    overlap_range: Tuple[float, float] = (0.74, 0.95)
    overlap_jitter: float = 0.05
    ber_acceptance: float = 0.05
    anc_redundancy_overhead: float = DEFAULT_ANC_REDUNDANCY_OVERHEAD
    chain_redundancy_overhead: float = 0.04
    seed: int = 20070823
    batch_size: int = 1
    backend: str = "numpy"
    impairments: ImpairmentConfig = ImpairmentConfig()
    arrival_rate: float = 0.0
    sim_duration: float = 0.0
    mac_policy: str = DEFAULT_MAC_POLICY

    def __post_init__(self) -> None:
        """Validate the configured ranges."""
        if self.runs <= 0:
            raise ConfigurationError("runs must be positive")
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.backend not in available_backends():
            raise ConfigurationError(
                f"unknown compute backend {self.backend!r}; choose from "
                f"{', '.join(available_backends())}"
            )
        if self.packets_per_run <= 0:
            raise ConfigurationError("packets_per_run must be positive")
        if self.payload_bits <= 0 or self.payload_bits % 8 != 0:
            raise ConfigurationError("payload_bits must be a positive multiple of 8")
        low, high = self.snr_db_range
        if low > high:
            raise ConfigurationError("snr_db_range must be (low, high) with low <= high")
        olow, ohigh = self.overlap_range
        if not (0.0 < olow <= ohigh <= 1.0):
            raise ConfigurationError("overlap_range must satisfy 0 < low <= high <= 1")
        if not 0.0 <= self.overlap_jitter <= 0.5:
            raise ConfigurationError("overlap_jitter must lie in [0, 0.5]")
        if not isinstance(self.impairments, ImpairmentConfig):
            raise ConfigurationError(
                "impairments must be an ImpairmentConfig instance"
            )
        if self.arrival_rate < 0:
            raise ConfigurationError("arrival_rate must be non-negative")
        if self.sim_duration < 0:
            raise ConfigurationError("sim_duration must be non-negative")
        if self.mac_policy not in MAC_POLICIES:
            raise ConfigurationError(
                f"unknown mac policy {self.mac_policy!r}; choose from "
                f"{', '.join(MAC_POLICIES)}"
            )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def quick(cls, seed: int = 7) -> "ExperimentConfig":
        """A configuration small enough for unit tests and CI smoke runs.

        Trade-off: 3 runs x 4 packets finishes in seconds, which is what
        CI needs, but the per-run CDFs it produces are far too coarse to
        compare against the paper's figures — individual gain samples
        jump by tens of percent between seeds.  Use it to exercise code
        paths, never to read off numbers.
        """
        return cls(runs=3, packets_per_run=4, payload_bits=512, seed=seed)

    @classmethod
    def benchmark(cls, seed: int = 20070823) -> "ExperimentConfig":
        """The default benchmark size: 40 runs, modest per-run packet count."""
        return cls(runs=40, packets_per_run=12, seed=seed)

    @classmethod
    def paper_scale(cls, seed: int = 20070823) -> "ExperimentConfig":
        """The paper's full workload (slow: 40 runs x 1000 packets/direction).

        Trade-off: this is the published experiment — 40 runs of 1000
        packets per direction — and the only size at which mean gains and
        BER CDFs are directly comparable to the figures, but every packet
        is a full sample-level simulation, so a single figure takes hours
        of CPU serially.  Run it through an
        :class:`~repro.experiments.engine.ExperimentEngine` with
        ``workers`` set to your core count and a ``cache_dir`` so an
        interrupted sweep resumes instead of restarting; results are
        bit-identical to a serial run.
        """
        return cls(runs=PAPER_NUM_RUNS, packets_per_run=1000, seed=seed)

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    #: Fields whose canonical in-config type is a tuple; JSON (and hence
    #: campaign spec files / snapshots read back from disk) carries them
    #: as lists, so :meth:`coerce_field` converts on the way in.
    _TUPLE_FIELDS = ("snr_db_range", "overlap_range")

    @classmethod
    def coerce_field(cls, name: str, value: Any) -> Any:
        """Coerce one JSON-carried field value to its canonical type.

        ``snapshot()`` output is JSON-shaped: tuples become lists and the
        nested :class:`ImpairmentConfig` becomes a plain dict.  Dataclass
        equality is type-sensitive, so reading those values back without
        coercion would build a config that compares *unequal* to the one
        snapshotted — and, worse, digests differently.  This is the single
        place the inverse conversions live.
        """
        if name in cls._TUPLE_FIELDS and isinstance(value, (list, tuple)):
            return tuple(value)
        if name == "impairments" and isinstance(value, Mapping):
            return ImpairmentConfig(**dict(value))
        return value

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "ExperimentConfig":
        """Inverse of :meth:`snapshot`: rebuild an equal config.

        Fields the snapshot omitted (disabled impairments, the default
        backend, default traffic knobs) come back at their defaults —
        exactly the values whose omission :meth:`snapshot` guarantees —
        so ``from_snapshot(cfg.snapshot()) == cfg`` holds for every
        config.  The campaign layer's content-addressed digests rely on
        that round-trip being exact
        (:func:`repro.campaign.spec.audit_snapshot_roundtrip`), and
        unknown keys are rejected rather than dropped so a typo in a
        campaign spec never silently runs the default.
        """
        payload = dict(snapshot)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown config field(s) in snapshot: {', '.join(unknown)}; "
                f"valid fields are {', '.join(sorted(known))}"
            )
        return cls(**{name: cls.coerce_field(name, value) for name, value in payload.items()})

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dict of the config fields.

        A default (all-off) impairment declaration is omitted: the key
        only appears once any impairment field differs from the default,
        which keeps the engine's cache digests, the structured-result
        config snapshots and the golden fixtures byte-identical to the
        pre-impairment library for every existing configuration.  The
        test is *equality with the default*, not ``enabled``: a bare
        ``fading_mode="drift"`` request is inactive on most experiments
        but changes what ``fading_sweep`` computes, so it must fork the
        digest.  The default ``backend`` is omitted for the same
        stability reason (and non-default digest-neutral backends are
        dropped later, by the engine's digest rule).
        """
        payload = asdict(self)
        if self.impairments == ImpairmentConfig():
            payload.pop("impairments")
        if self.backend == DEFAULT_BACKEND:
            payload.pop("backend")
        for knob, default in (
            ("arrival_rate", 0.0),
            ("sim_duration", 0.0),
            ("mac_policy", DEFAULT_MAC_POLICY),
        ):
            if payload[knob] == default:
                payload.pop(knob)
        return payload

    def sim_overrides(self) -> Dict[str, Any]:
        """The time-domain traffic knobs that differ from their defaults.

        Traffic scenarios consume these; :func:`~repro.experiments.scenarios.run_scenario`
        raises when any appear for a scenario that ignores them, so a
        ``--arrival-rate`` flag can never be silently dropped.
        """
        overrides: Dict[str, Any] = {}
        if self.arrival_rate != 0.0:
            overrides["arrival_rate"] = self.arrival_rate
        if self.sim_duration != 0.0:
            overrides["sim_duration"] = self.sim_duration
        if self.mac_policy != DEFAULT_MAC_POLICY:
            overrides["mac_policy"] = self.mac_policy
        return overrides

    @property
    def engine_batch_size(self) -> Optional[int]:
        """The batch size a runner should request from the engine.

        ``None`` while the config keeps the default of 1, so that an
        engine constructed with its own ``batch_size`` still applies it;
        the config knob takes precedence only when explicitly set.
        """
        return self.batch_size if self.batch_size != 1 else None

    # ------------------------------------------------------------------
    # Per-run draws
    # ------------------------------------------------------------------
    def run_rng(self, run_index: int, stream: int = 0) -> np.random.Generator:
        """Deterministic random generator for one run (and sub-stream)."""
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, int(run_index), int(stream)])
        )

    def draw_run_snr(self, rng: np.random.Generator) -> float:
        """Draw one run's operating SNR."""
        low, high = self.snr_db_range
        if low == high:
            return float(low)
        return float(rng.uniform(low, high))

    def draw_run_overlap(self, rng: np.random.Generator) -> float:
        """Draw one run's mean collision overlap."""
        low, high = self.overlap_range
        if low == high:
            return float(low)
        return float(rng.uniform(low, high))
