"""Figure 7: capacity bounds as functions of SNR.

A thin wrapper over :func:`repro.capacity.sweep.capacity_sweep` that
returns the curve plus the headline observations the paper draws from the
figure: the crossover SNR below which amplify-and-forward hurts, and the
asymptotic 2x gain at high SNR.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.capacity.sweep import CapacityCurve, capacity_sweep


def run_capacity_experiment(
    snr_db_values: Optional[Sequence[float]] = None,
) -> CapacityCurve:
    """Evaluate the Theorem 8.1 bounds over the Fig. 7 SNR range."""
    if snr_db_values is None:
        snr_db_values = np.arange(0.0, 56.0, 1.0)
    return capacity_sweep(snr_db_values)


def render_capacity_table(curve: CapacityCurve, step: int = 5) -> str:
    """Plain-text rendering of the Fig. 7 series (every ``step``-th point)."""
    lines = ["SNR (dB) | traditional (b/s/Hz) | ANC (b/s/Hz) | gain"]
    lines.append("-" * len(lines[0]))
    rows = curve.as_rows()
    for index in range(0, len(rows), step):
        snr, trad, anc, gain = rows[index]
        lines.append(f"{snr:8.1f} | {trad:20.3f} | {anc:12.3f} | {gain:5.2f}")
    lines.append(f"crossover SNR: {curve.crossover_db:.1f} dB")
    lines.append(f"gain at {rows[-1][0]:.0f} dB: {curve.asymptotic_gain:.2f}x")
    return "\n".join(lines)
