"""Figure 7: capacity bounds as functions of SNR.

Evaluates the Theorem 8.1 bounds over the figure's SNR range through the
:class:`~repro.experiments.engine.ExperimentEngine` (one trial per grid
point — the bounds are elementwise in SNR, so per-point evaluation is
bit-identical to the vectorised sweep) and returns the curve plus the
headline observations the paper draws from the figure: the crossover SNR
below which amplify-and-forward hurts, and the asymptotic 2x gain at high
SNR.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.capacity.bounds import (
    DEFAULT_ALPHA,
    anc_capacity_lower_bound,
    crossover_snr_db,
    traditional_capacity_upper_bound,
)
from repro.capacity.sweep import CapacityCurve, validate_snr_grid
from repro.exceptions import CapacityError, ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine, default_engine


def run_capacity_point_trial(
    cfg: ExperimentConfig, snr_db: float, alpha: float = DEFAULT_ALPHA
) -> Tuple[float, float, float]:
    """Evaluate both Theorem 8.1 bounds and their ratio at one SNR.

    The engine passes the SNR value itself as the trial key; ``cfg`` is
    unused (the bounds are deterministic) but part of the engine's
    signature.  Returns ``(traditional, anc, gain)`` in b/s/Hz.  The gain
    is the guarded ratio of the two bounds, exactly as
    :func:`repro.capacity.bounds.capacity_gain` defines it — computed
    from the already-evaluated bounds instead of re-deriving them.
    """
    grid = np.asarray([float(snr_db)], dtype=float)
    traditional = float(np.atleast_1d(traditional_capacity_upper_bound(grid, alpha))[0])
    anc = float(np.atleast_1d(anc_capacity_lower_bound(grid, alpha))[0])
    gain = anc / traditional if traditional > 0 else 0.0
    return traditional, anc, gain


def run_capacity_experiment(
    snr_db_values: Optional[Sequence[float]] = None,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[ExperimentEngine] = None,
    alpha: float = DEFAULT_ALPHA,
) -> CapacityCurve:
    """Evaluate the Theorem 8.1 bounds over the Fig. 7 SNR range.

    The bounds are closed-form information-theoretic expressions, not a
    waveform simulation, so channel impairments cannot apply; a config
    that requests them is rejected loudly rather than producing a result
    whose snapshot claims impairments that never acted.
    """
    if snr_db_values is None:
        snr_db_values = np.arange(0.0, 56.0, 1.0)
    grid = validate_snr_grid(snr_db_values)

    cfg = config if config is not None else ExperimentConfig()
    if cfg.impairments.enabled:
        raise ConfigurationError(
            "the capacity experiment evaluates analytic Theorem 8.1 bounds; "
            "channel impairments (--cfo/--fading) do not apply to it"
        )
    points = default_engine(engine).run_batched(
        "fig07_capacity",
        run_capacity_point_trial,
        cfg,
        [float(v) for v in grid],
        params={"alpha": float(alpha)},
        batch_size=cfg.engine_batch_size,
    )
    try:
        crossover = crossover_snr_db(low_db=float(grid[0]), high_db=float(grid[-1]), alpha=alpha)
    except CapacityError:
        crossover = float("nan")
    return CapacityCurve(
        snr_db=tuple(float(v) for v in grid),
        traditional=tuple(p[0] for p in points),
        anc=tuple(p[1] for p in points),
        gain=tuple(p[2] for p in points),
        crossover_db=crossover,
    )


def render_capacity_table(curve: CapacityCurve, step: int = 5) -> str:
    """Plain-text rendering of the Fig. 7 series (every ``step``-th point)."""
    lines = ["SNR (dB) | traditional (b/s/Hz) | ANC (b/s/Hz) | gain"]
    lines.append("-" * len(lines[0]))
    rows = curve.as_rows()
    for index in range(0, len(rows), step):
        snr, trad, anc, gain = rows[index]
        lines.append(f"{snr:8.1f} | {trad:20.3f} | {anc:12.3f} | {gain:5.2f}")
    lines.append(f"crossover SNR: {curve.crossover_db:.1f} dB")
    lines.append(f"gain at {rows[-1][0]:.0f} dB: {curve.asymptotic_gain:.2f}x")
    return "\n".join(lines)
