"""Scenario: multi-flow traffic over seeded random meshes.

Each trial drops a random connected mesh, draws a set of unidirectional
flows, and lets the ANC-aware scheduler
(:func:`repro.mac.planner.plan_mesh_exchanges`) pair up the flows that
cross at a shared relay with side information available.  Three schemes
then carry the *same* flow set:

* ``anc`` — matched pairs run the two-slot analog-network-coding
  exchange (concurrent uplink + amplify-and-forward broadcast); leftover
  flows fall back to plain routing;
* ``cope`` — the same matched pairs run digital XOR coding at the relay
  (three clean slots per pair); the same leftovers are routed;
* ``traditional`` — every flow is routed hop by hop.

The sweep axis is the number of offered flows: more flows mean more
crossing opportunities, so the aggregate ANC gain over plain routing
grows with load — the scheduler's pairing rate (reported per trial as
``paired``) is the mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.channel.impairments import apply_impairments
from repro.channel.interference import OverlapModel
from repro.exceptions import ConfigurationError, TopologyError
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import (
    ScenarioSpec,
    combine_runs,
    register_scenario,
)
from repro.mac.planner import plan_mesh_exchanges
from repro.network.flows import Flow
from repro.network.generator import generate_random_mesh
from repro.network.topologies import ChannelConditions
from repro.network.topology import Topology
from repro.protocols.anc import ANCRelayProtocol, default_min_offset
from repro.protocols.base import RunResult
from repro.protocols.cope import CopeRelayProtocol
from repro.protocols.traditional import TraditionalRouting

#: Base RNG stream for this scenario (disjoint from the chain sweep's).
_STREAM_BASE = 700


def draw_mesh_flows(
    topology: Topology,
    n_flows: int,
    packets: int,
    rng: np.random.Generator,
) -> List[Flow]:
    """Draw a deterministic random flow set over a mesh.

    Candidates are ordered node pairs whose shortest routable path is
    exactly two hops — the shape that *can* cross at a relay — so the
    scheduler's pairing rate, not the draw, decides how much ANC happens.
    If the mesh offers fewer 2-hop pairs than requested flows, longer
    routable pairs fill the remainder (a mesh can legitimately offer
    fewer multi-hop pairs than the sweep axis asks for; the trial's
    ``offered`` metric reports the packets actually carried).  A mesh so
    dense that *no* multi-hop pair exists raises
    :class:`~repro.exceptions.ConfigurationError`.
    """
    two_hop: List[Tuple[int, int]] = []
    longer: List[Tuple[int, int]] = []
    for source in topology.nodes:
        for destination in topology.nodes:
            if source == destination:
                continue
            try:
                path = topology.shortest_path(source, destination)
            except TopologyError:
                continue
            if len(path) == 3:
                two_hop.append((source, destination))
            elif len(path) > 3:
                longer.append((source, destination))
    chosen: List[Tuple[int, int]] = []
    for pool in (two_hop, longer):
        if len(chosen) >= n_flows or not pool:
            continue
        order = rng.permutation(len(pool))
        for index in order:
            if len(chosen) >= n_flows:
                break
            pair = pool[int(index)]
            if pair not in chosen:
                chosen.append(pair)
    if not chosen:
        raise ConfigurationError(
            "mesh offers no multi-hop node pairs to route; lower the radius"
        )
    return [Flow(source, destination, packets) for source, destination in chosen]


def run_mesh_sweep_trial(
    cfg: ExperimentConfig,
    key: Tuple[int, int],
    nodes: int = 12,
    radius: float = 0.45,
) -> Dict[str, Dict[str, float]]:
    """Execute one (n_flows, run) cell of the mesh multi-flow sweep.

    Picklable engine trial; the mesh layout, the flow draw and every
    protocol's randomness all derive from ``cfg.run_rng(run, ...)``
    substreams keyed by the flow count.
    """
    n_flows, run = int(key[0]), int(key[1])
    streams = _STREAM_BASE + 64 * n_flows
    topo_rng = cfg.run_rng(run, stream=streams)
    snr_db = cfg.draw_run_snr(topo_rng)
    mean_overlap = cfg.draw_run_overlap(topo_rng)
    conditions = ChannelConditions(snr_db=snr_db)
    topology = generate_random_mesh(conditions, topo_rng, nodes=nodes, radius=radius)
    apply_impairments(
        topology, cfg.impairments, cfg.run_rng(run, stream=streams + 6)
    )
    flows = draw_mesh_flows(topology, n_flows, cfg.packets_per_run, topo_rng)
    return run_mesh_schemes(cfg, run, streams, topology, flows, mean_overlap)


def run_mesh_schemes(
    cfg: ExperimentConfig,
    run: int,
    streams: int,
    topology: Topology,
    flows: List[Flow],
    mean_overlap: float,
) -> Dict[str, Dict[str, float]]:
    """Carry one flow set under all three schemes over a built mesh.

    The scheme-execution half of a mesh trial, shared by ``mesh_sweep``
    and the path-loss ``geometry_mesh`` scenario: the ANC-aware planner
    pairs the flows, matched pairs run the two-slot ANC exchange (or
    digital XOR coding for the ``cope`` cell), leftovers are routed, and
    every scheme's parts are combined into one metrics cell.  RNG
    substreams are keyed off ``streams`` exactly as the original
    mesh-sweep trial laid them out, so the refactor is byte-identical.
    """
    schedule = plan_mesh_exchanges(topology, flows)

    traditional = TraditionalRouting(
        topology,
        flows,
        payload_bits=cfg.payload_bits,
        ber_acceptance=cfg.ber_acceptance,
        rng=cfg.run_rng(run, stream=streams + 1),
        topology_name="mesh",
    ).run()

    anc_parts: List[RunResult] = []
    cope_parts: List[RunResult] = []
    for index, exchange in enumerate(schedule.exchanges):
        anc_rng = cfg.run_rng(run, stream=streams + 8 + 2 * index)
        anc_parts.append(
            ANCRelayProtocol(
                topology,
                exchange.relay,
                exchange.flow_a,
                exchange.flow_b,
                payload_bits=cfg.payload_bits,
                ber_acceptance=cfg.ber_acceptance,
                redundancy_overhead=cfg.anc_redundancy_overhead,
                overhearing=exchange.overhearing,
                overlap_model=OverlapModel(
                    mean_overlap=mean_overlap,
                    jitter=cfg.overlap_jitter,
                    min_offset=default_min_offset(),
                    rng=anc_rng,
                ),
                rng=anc_rng,
                topology_name="mesh",
            ).run()
        )
        cope_parts.append(
            CopeRelayProtocol(
                topology,
                exchange.relay,
                exchange.flow_a,
                exchange.flow_b,
                payload_bits=cfg.payload_bits,
                ber_acceptance=cfg.ber_acceptance,
                overhearing=exchange.overhearing,
                rng=cfg.run_rng(run, stream=streams + 9 + 2 * index),
                topology_name="mesh",
            ).run()
        )
    if schedule.routed:
        for offset, parts in ((4, anc_parts), (5, cope_parts)):
            parts.append(
                TraditionalRouting(
                    topology,
                    list(schedule.routed),
                    payload_bits=cfg.payload_bits,
                    ber_acceptance=cfg.ber_acceptance,
                    rng=cfg.run_rng(run, stream=streams + offset),
                    topology_name="mesh",
                ).run()
            )

    anc_cell = combine_runs(anc_parts) if anc_parts else combine_runs([traditional])
    cope_cell = combine_runs(cope_parts) if cope_parts else combine_runs([traditional])
    for cell in (anc_cell, cope_cell):
        cell["paired"] = float(schedule.paired_flows)
    traditional_cell = combine_runs([traditional])
    traditional_cell["paired"] = 0.0
    return {
        "anc": anc_cell,
        "cope": cope_cell,
        "traditional": traditional_cell,
    }


MESH_SWEEP = register_scenario(
    ScenarioSpec(
        name="mesh_sweep",
        description="aggregate gain vs offered flows on seeded random "
        "meshes (ANC-paired vs COPE-paired vs all-routed)",
        topology="random_mesh",
        sweep_axis="flows",
        sweep_values=(2, 4, 6, 8),
        quick_sweep_values=(2, 4, 6),
        schemes=("anc", "cope", "traditional"),
        trial_fn=run_mesh_sweep_trial,
        params={"nodes": 12, "radius": 0.45},
    )
)
