"""The §11.3 summary of results.

Runs every figure experiment (at a configurable size) and produces the
bullet list of headline numbers the paper opens its evaluation with:
mean gains for each topology, mean BERs, and the lowest SIR at which
decoding still works.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.alice_bob import run_alice_bob_experiment
from repro.experiments.chain import run_chain_experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.engine import ExperimentEngine
from repro.experiments.sir_sweep import SIRPoint, run_sir_sweep
from repro.experiments.x_topology import run_x_topology_experiment
from repro.metrics.report import ExperimentReport

#: The paper's §11.3 headline numbers, shown next to the measured column.
PAPER_REFERENCE = {
    "alice_bob_gain_over_traditional": 1.70,
    "alice_bob_gain_over_cope": 1.30,
    "alice_bob_mean_ber": 0.04,
    "x_gain_over_traditional": 1.65,
    "x_gain_over_cope": 1.28,
    "chain_gain_over_traditional": 1.36,
    "chain_mean_ber": 0.015,
    "ber_at_minus3db_sir": 0.05,
}


def render_summary_rows(rows: Dict[str, float]) -> str:
    """Render the §11.3 measured-vs-paper table from its metric rows.

    Shared by :meth:`SummaryResult.render` and the structured-results
    renderer (:mod:`repro.results.render`), so the text view stays
    byte-identical whichever path produced the numbers.
    """
    lines = ["=== Summary of results (paper §11.3) ==="]
    lines.append(f"{'metric':38} | {'measured':>9} | {'paper':>7}")
    lines.append("-" * 62)
    for key, value in rows.items():
        reference = PAPER_REFERENCE.get(key, float('nan'))
        lines.append(f"{key:38} | {value:9.3f} | {reference:7.3f}")
    return "\n".join(lines)


@dataclass
class SummaryResult:
    """All headline numbers of §11.3 in one object."""

    alice_bob: ExperimentReport
    x_topology: ExperimentReport
    chain: ExperimentReport
    sir_points: List[SIRPoint] = field(default_factory=list)

    def rows(self) -> Dict[str, float]:
        """The summary numbers, keyed the way the benchmarks print them."""
        rows: Dict[str, float] = {}
        rows["alice_bob_gain_over_traditional"] = self.alice_bob.comparisons[
            "traditional"
        ].mean_gain
        rows["alice_bob_gain_over_cope"] = self.alice_bob.comparisons["cope"].mean_gain
        rows["alice_bob_mean_ber"] = self.alice_bob.ber_cdf.mean
        rows["x_gain_over_traditional"] = self.x_topology.comparisons["traditional"].mean_gain
        rows["x_gain_over_cope"] = self.x_topology.comparisons["cope"].mean_gain
        rows["chain_gain_over_traditional"] = self.chain.comparisons["traditional"].mean_gain
        rows["chain_mean_ber"] = self.chain.ber_cdf.mean
        if self.sir_points:
            lowest = min(self.sir_points, key=lambda p: p.sir_db)
            rows["ber_at_minus3db_sir"] = lowest.mean_ber
        return rows

    def render(self) -> str:
        """Plain-text rendering of the summary table."""
        return render_summary_rows(self.rows())


def run_summary(
    config: Optional[ExperimentConfig] = None,
    include_sir_sweep: bool = True,
    engine: Optional[ExperimentEngine] = None,
) -> SummaryResult:
    """Run every evaluation experiment and collect the §11.3 summary.

    ``engine`` is forwarded to each sub-experiment, so a parallel or
    resumable engine accelerates the whole summary at once.
    """
    cfg = config if config is not None else ExperimentConfig()
    alice_bob = run_alice_bob_experiment(cfg, engine=engine)
    x_top = run_x_topology_experiment(cfg, engine=engine)
    chain = run_chain_experiment(cfg, engine=engine)
    sir_points: List[SIRPoint] = []
    if include_sir_sweep:
        sir_points = run_sir_sweep(
            cfg, packets_per_point=max(4, cfg.packets_per_run // 2), engine=engine
        )
    return SummaryResult(
        alice_bob=alice_bob,
        x_topology=x_top,
        chain=chain,
        sir_points=sir_points,
    )
