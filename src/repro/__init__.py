"""Analog Network Coding (ANC) — a Python reproduction of
*Embracing Wireless Interference: Analog Network Coding* (Katti,
Gollakota, Katabi — SIGCOMM 2007).

The package is organised bottom-up:

* substrates: :mod:`repro.utils`, :mod:`repro.signal`,
  :mod:`repro.modulation`, :mod:`repro.channel`, :mod:`repro.scrambler`,
  :mod:`repro.coding`, :mod:`repro.framing`;
* the paper's contribution: :mod:`repro.anc` (interfered-MSK decoding);
* the system around it: :mod:`repro.node`, :mod:`repro.mac`,
  :mod:`repro.network`, :mod:`repro.protocols`;
* analysis and evaluation: :mod:`repro.capacity`, :mod:`repro.metrics`,
  :mod:`repro.experiments`.

Quickstart::

    from repro.experiments import ExperimentConfig, run_alice_bob_experiment

    report = run_alice_bob_experiment(ExperimentConfig.quick())
    print(report.render())
"""

from repro import constants, exceptions

__version__ = "1.0.0"

__all__ = ["constants", "exceptions", "__version__"]
