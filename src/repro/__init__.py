"""Analog Network Coding (ANC) — a Python reproduction of
*Embracing Wireless Interference: Analog Network Coding* (Katti,
Gollakota, Katabi — SIGCOMM 2007).

The package is organised bottom-up:

* substrates: :mod:`repro.utils`, :mod:`repro.signal`,
  :mod:`repro.modulation`, :mod:`repro.channel`, :mod:`repro.scrambler`,
  :mod:`repro.coding`, :mod:`repro.framing`;
* the paper's contribution: :mod:`repro.anc` (interfered-MSK decoding);
* the system around it: :mod:`repro.node`, :mod:`repro.mac`,
  :mod:`repro.network`, :mod:`repro.protocols`;
* analysis and evaluation: :mod:`repro.capacity`, :mod:`repro.metrics`,
  :mod:`repro.experiments`.

Quickstart (structured results through the facade)::

    from repro import api
    from repro.experiments import ExperimentConfig
    from repro.results import render_text

    result = api.run("alice-bob", config=ExperimentConfig.quick())
    print(render_text(result))       # the classic text report
    print(result.to_json())          # machine-readable export

The rich per-experiment entry points remain available::

    from repro.experiments import ExperimentConfig, run_alice_bob_experiment

    report = run_alice_bob_experiment(ExperimentConfig.quick())
    print(report.render())
"""

from repro import constants, exceptions

__version__ = "1.0.0"

__all__ = ["api", "constants", "exceptions", "results", "__version__"]

#: Submodules resolved lazily so ``import repro`` stays lightweight.
_LAZY_SUBMODULES = ("api", "results")


def __getattr__(name):
    """Lazily import the heavyweight facade submodules on first access."""
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
