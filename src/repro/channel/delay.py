"""Integer-sample propagation / start-time delay."""

from __future__ import annotations

from repro.channel.model import Channel
from repro.exceptions import ChannelError
from repro.signal.ops import delay_signal
from repro.signal.samples import ComplexSignal


class DelayChannel(Channel):
    """Delay a signal by an integer number of samples.

    In the simulator this models both propagation delay and — more
    importantly for ANC — the deliberate random start offset that keeps the
    two interfering packets from overlapping completely (§7.2).
    """

    def __init__(self, delay_samples: int) -> None:
        """Create a delay of ``delay_samples`` samples (non-negative)."""
        if delay_samples < 0:
            raise ChannelError("delay must be non-negative")
        self.delay_samples = int(delay_samples)

    def apply(self, signal: ComplexSignal) -> ComplexSignal:
        """Prepend ``delay_samples`` zeros to the signal."""
        if self.delay_samples == 0:
            return signal
        return delay_signal(signal, self.delay_samples)
