"""Carrier frequency offset: the per-sender oscillator phase ramp.

Two physically separate radios never share an oscillator, so a residual
carrier frequency offset (CFO) of Δf between a transmitter and a receiver
rotates every received sample by an extra ``2πΔf`` per sample interval —
a linear phase ramp on top of the constant path phase.  §6 of the paper
*exploits* exactly this imperfection: the relative CFO between the two
unsynchronised senders makes their phase difference sweep the whole
circle during one packet, which is what lets the router separate the two
amplitudes from the energy statistics (Eqs. 5–6) and what keeps the
phase-matching step (Eqs. 7–8) well conditioned.

:class:`CarrierFrequencyOffsetChannel` models one oscillator pair's ramp
as a composable :class:`~repro.channel.model.Channel` stage.  The
impairment subsystem (:mod:`repro.channel.impairments`) attaches one such
stage per *sender*, so every link out of a radio sees the same oscillator
— distinct from the per-path ``Link.frequency_offset`` the topology
factories have always drawn, which models the receiver-side mixing of one
specific pair.
"""

from __future__ import annotations

import numpy as np

from repro.channel.model import Channel
from repro.signal.batch import SignalBatch
from repro.signal.samples import ComplexSignal


class CarrierFrequencyOffsetChannel(Channel):
    """Rotate a signal by a linear phase ramp ``exp(i(φ0 + Δω·n))``.

    Parameters
    ----------
    frequency_offset:
        Residual carrier frequency offset ``Δω`` in radians per sample
        (``2πΔf·T_s`` for a physical offset of ``Δf`` Hz at sample
        interval ``T_s``).  May be negative: the sign encodes which
        oscillator runs fast.
    initial_phase:
        Phase ``φ0`` of the ramp at the first sample, in radians.  Two
        slots transmitted by the same radio can be made phase-continuous
        by advancing this by ``Δω·n_samples`` between slots.
    """

    def __init__(self, frequency_offset: float, initial_phase: float = 0.0) -> None:
        """See the class docstring for the parameter semantics."""
        self.frequency_offset = float(frequency_offset)
        self.initial_phase = float(initial_phase)

    def ramp(self, n_samples: int) -> np.ndarray:
        """The complex rotation ``exp(i(φ0 + Δω·n))`` for ``n_samples`` samples."""
        index = np.arange(int(n_samples))
        return np.exp(1j * (self.initial_phase + self.frequency_offset * index))

    def apply(self, signal: ComplexSignal) -> ComplexSignal:
        """Rotate every sample of the signal along the oscillator ramp."""
        if signal.samples.size == 0 or (
            self.frequency_offset == 0.0 and self.initial_phase == 0.0
        ):
            return signal
        return ComplexSignal(signal.samples * self.ramp(signal.samples.size))

    def apply_batch(self, batch: SignalBatch) -> SignalBatch:
        """Rotate every row of a batch along the same oscillator ramp.

        Bit-exactness contract: row ``i`` of the output equals
        ``self.apply(batch.row(i))`` bitwise.  The ramp is computed once
        (identical values to the scalar path) and broadcast-multiplied —
        an elementwise operation over C-contiguous inputs, so IEEE-754
        results cannot differ from the per-row products.
        """
        if batch.n_samples == 0 or (
            self.frequency_offset == 0.0 and self.initial_phase == 0.0
        ):
            return batch
        return SignalBatch(batch.samples * self.ramp(batch.n_samples)[None, :])

    def advanced(self, n_samples: int) -> "CarrierFrequencyOffsetChannel":
        """The same oscillator, ``n_samples`` later (phase-continuous ramp)."""
        return CarrierFrequencyOffsetChannel(
            self.frequency_offset,
            self.initial_phase + self.frequency_offset * int(n_samples),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        """Debug rendering with both ramp parameters."""
        return (
            f"CarrierFrequencyOffsetChannel(frequency_offset={self.frequency_offset!r}, "
            f"initial_phase={self.initial_phase!r})"
        )
