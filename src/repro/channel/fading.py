"""Stochastic small-scale fading: Rayleigh and Rician channel stages.

The flat channel of §5.3 (one attenuation, one phase) describes a static
link; real links also fade as the multipath environment moves.  These
stages model that with the two classical small-scale distributions:

* **Rayleigh** — no line of sight; the complex gain is circularly
  symmetric Gaussian, ``g ~ CN(0, Ω)``, so the envelope ``|g|`` is
  Rayleigh distributed with mean power ``E[|g|²] = Ω``.
* **Rician** — a line-of-sight ray of power ``K/(K+1)·Ω`` plus scattered
  energy of power ``1/(K+1)·Ω``; ``K`` (the K-factor) is given in dB and
  large ``K`` degenerates to the static flat channel.

Each stage supports two time structures:

* ``mode="block"`` — one gain per application (per packet): the channel
  is constant over a packet and independent across packets, the standard
  block-fading abstraction;
* ``mode="drift"`` — the gain evolves *within* the packet as a
  first-order Gauss–Markov process with per-sample correlation ``ρ``
  derived from the ``doppler`` rate, reproducing the slow variation §6
  warns about ("they do vary with time").

All randomness comes from the ``rng`` handed to the stage — in the
simulator that is the per-trial engine substream, so fades are
reproducible and independent of worker scheduling.  The batched
counterpart :meth:`FadingChannel.apply_batch` draws per-row gains in row
order and applies them with one vectorized multiply, bit-identical per
row to the scalar path (see ``docs/CHANNELS.md``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.model import Channel
from repro.exceptions import ChannelError
from repro.signal.batch import SignalBatch
from repro.signal.samples import ComplexSignal
from repro.utils.db import db_to_power_ratio

#: Time structures a fading stage supports.
FADING_MODES = ("block", "drift")

#: Fading families a link or impairment config may request.
FADING_KINDS = ("none", "rayleigh", "rician")


class FadingChannel(Channel):
    """Common machinery of the Rayleigh and Rician stages.

    Parameters
    ----------
    mean_power_gain:
        Average power gain ``Ω = E[|g|²]`` of the fade (1.0 keeps the
        link budget neutral; the deterministic path attenuation stays in
        :class:`~repro.channel.flat.FlatFadingChannel`).
    mode:
        ``"block"`` (one gain per application) or ``"drift"`` (in-packet
        Gauss–Markov evolution).
    doppler:
        Normalised fade rate for ``mode="drift"``: the fraction of the
        gain decorrelated per sample (per-sample correlation is
        ``ρ = 1 - doppler``).  Must be 0 in block mode.
    rng:
        Random generator the fades are drawn from; defaults to a fresh
        unseeded generator (tests and simulators always pass one).
    """

    def __init__(
        self,
        mean_power_gain: float = 1.0,
        mode: str = "block",
        doppler: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """See the class docstring for the parameter semantics."""
        if mean_power_gain <= 0:
            raise ChannelError("mean_power_gain must be positive")
        if mode not in FADING_MODES:
            raise ChannelError(
                f"unknown fading mode {mode!r}; choose from {FADING_MODES}"
            )
        if not 0.0 <= doppler < 1.0:
            raise ChannelError("doppler must lie in [0, 1)")
        if mode == "block" and doppler != 0.0:
            raise ChannelError("block fading takes no doppler rate")
        self.mean_power_gain = float(mean_power_gain)
        self.mode = mode
        self.doppler = float(doppler)
        self._rng = rng if rng is not None else np.random.default_rng()

    # ------------------------------------------------------------------
    # Gain processes
    # ------------------------------------------------------------------
    def _scattered_gain(self, scale: float) -> complex:
        """One circularly symmetric Gaussian draw of mean power ``scale``."""
        std = np.sqrt(scale / 2.0)
        return complex(
            self._rng.normal(0.0, std) + 1j * self._rng.normal(0.0, std)
        )

    def _scattered_drift(self, n_samples: int, scale: float) -> np.ndarray:
        """A stationary Gauss–Markov scattered-gain track of ``n_samples``.

        ``g[0] ~ CN(0, scale)`` and
        ``g[n] = ρ g[n-1] + sqrt(1-ρ²) w[n]`` with ``w ~ CN(0, scale)``,
        which keeps every marginal at mean power ``scale`` while the
        autocorrelation decays as ``ρ^k``.
        """
        rho = 1.0 - self.doppler
        innovation_scale = np.sqrt(max(1.0 - rho * rho, 0.0))
        std = np.sqrt(scale / 2.0)
        noise = self._rng.normal(0.0, std, (2, n_samples))
        gains = np.empty(n_samples, dtype=np.complex128)
        current = complex(noise[0, 0], noise[1, 0])
        gains[0] = current
        for index in range(1, n_samples):
            innovation = complex(noise[0, index], noise[1, index])
            current = rho * current + innovation_scale * innovation
            gains[index] = current
        return gains

    def _line_of_sight(self) -> complex:
        """The deterministic LOS component (none for Rayleigh)."""
        return 0.0 + 0.0j

    def _scattered_power(self) -> float:
        """Mean power of the scattered (diffuse) component."""
        return self.mean_power_gain

    def draw_gains(self, n_samples: int) -> np.ndarray:
        """Draw the complex gain track for one application.

        Returns a 0-d array (one gain) in block mode and an
        ``(n_samples,)`` array in drift mode; either broadcasts over the
        signal with a single multiply.
        """
        if n_samples < 0:
            raise ChannelError("n_samples must be non-negative")
        los = self._line_of_sight()
        scattered = self._scattered_power()
        if self.mode == "block":
            return np.asarray(los + self._scattered_gain(scattered))
        return los + self._scattered_drift(int(n_samples), scattered)

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self, signal: ComplexSignal) -> ComplexSignal:
        """Multiply the signal by one freshly drawn fade realisation."""
        if signal.samples.size == 0:
            return signal
        return ComplexSignal(signal.samples * self.draw_gains(signal.samples.size))

    def apply_batch(self, batch: SignalBatch) -> SignalBatch:
        """Fade every row of a batch with an independent realisation.

        Bit-exactness contract: gains are drawn row by row in row order —
        exactly the draws ``apply`` would make on each row with the same
        generator — and applied with one elementwise multiply over the
        C-contiguous stack, so row ``i`` is bitwise what the scalar path
        produces for that row.
        """
        if batch.n_samples == 0:
            return batch
        if self.mode == "block":
            gains = np.stack(
                [self.draw_gains(batch.n_samples) for _ in range(batch.n_trials)]
            )[:, None]
        else:
            gains = self._drift_gains_batch(batch.n_trials, batch.n_samples)
        return SignalBatch(batch.samples * gains)

    def _drift_gains_batch(self, n_trials: int, n_samples: int) -> np.ndarray:
        """Row-stacked drift tracks, bit-identical to per-row :meth:`draw_gains`.

        The noise blocks are drawn per row in row order — the exact rng
        calls the scalar path makes — and the Gauss–Markov recurrence
        then advances *all* rows at once: one Python loop over samples
        instead of ``n_trials × n_samples`` scalar iterations.  Every
        recurrence operation is elementwise on the trial axis (the same
        naive complex multiply/add sequence per element), so each row's
        arithmetic equals the scalar sequence.
        """
        los = self._line_of_sight()
        scale = self._scattered_power()
        rho = 1.0 - self.doppler
        innovation_scale = np.sqrt(max(1.0 - rho * rho, 0.0))
        std = np.sqrt(scale / 2.0)
        noise = np.stack(
            [self._rng.normal(0.0, std, (2, n_samples)) for _ in range(n_trials)]
        )
        innovations = np.empty((n_trials, n_samples), dtype=np.complex128)
        innovations.real = noise[:, 0, :]
        innovations.imag = noise[:, 1, :]
        gains = np.empty((n_trials, n_samples), dtype=np.complex128)
        current = innovations[:, 0].copy()
        gains[:, 0] = current
        for index in range(1, n_samples):
            current = rho * current + innovation_scale * innovations[:, index]
            gains[:, index] = current
        return los + gains


class RayleighFadingChannel(FadingChannel):
    """Rayleigh fading: scattered energy only, no line-of-sight ray.

    The complex gain is ``CN(0, Ω)``; the envelope is Rayleigh with mean
    power ``Ω = mean_power_gain``.  See :class:`FadingChannel` for the
    block/drift time structures and the rng contract.
    """


def make_fading_channel(
    kind: str,
    k_db: float = 6.0,
    los_phase: float = 0.0,
    mean_power_gain: float = 1.0,
    mode: str = "block",
    doppler: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Optional[FadingChannel]:
    """Build the fading stage a link's fields describe (``None`` for "none").

    This is the one place the string form (``Link.fading`` /
    ``ImpairmentConfig.fading``) is mapped to a concrete stage, so the
    scalar simulator, the batched differential tests and the CLI all
    agree on what each name means.
    """
    if kind == "none":
        return None
    if kind == "rayleigh":
        return RayleighFadingChannel(
            mean_power_gain=mean_power_gain, mode=mode, doppler=doppler, rng=rng
        )
    if kind == "rician":
        return RicianFadingChannel(
            k_db=k_db,
            los_phase=los_phase,
            mean_power_gain=mean_power_gain,
            mode=mode,
            doppler=doppler,
            rng=rng,
        )
    raise ChannelError(f"unknown fading kind {kind!r}; choose from {FADING_KINDS}")


class RicianFadingChannel(FadingChannel):
    """Rician fading: a line-of-sight ray plus Rayleigh-scattered energy.

    Parameters
    ----------
    k_db:
        Rician K-factor in dB — the LOS-to-scattered power ratio.  The
        LOS ray carries ``K/(K+1)`` of the mean power and the scattered
        component ``1/(K+1)``; ``k_db → -∞`` recovers Rayleigh and large
        ``k_db`` approaches the static flat channel.
    los_phase:
        Phase of the LOS ray in radians (the specular path's geometry).
    mean_power_gain, mode, doppler, rng:
        As for :class:`FadingChannel`.
    """

    def __init__(
        self,
        k_db: float = 6.0,
        los_phase: float = 0.0,
        mean_power_gain: float = 1.0,
        mode: str = "block",
        doppler: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """See the class docstring for the parameter semantics."""
        super().__init__(
            mean_power_gain=mean_power_gain, mode=mode, doppler=doppler, rng=rng
        )
        self.k_db = float(k_db)
        self.los_phase = float(los_phase)
        self._k_linear = db_to_power_ratio(self.k_db)

    def _line_of_sight(self) -> complex:
        los_power = self.mean_power_gain * self._k_linear / (self._k_linear + 1.0)
        return complex(np.sqrt(los_power) * np.exp(1j * self.los_phase))

    def _scattered_power(self) -> float:
        return self.mean_power_gain / (self._k_linear + 1.0)
