"""Interference combiner: concurrent transmissions arriving at one receiver.

When two senders transmit at (roughly) the same time, the receiver observes
the *sum* of the two per-link-distorted waveforms plus its own noise — this
is what a "collision" is at the signal level (§1, §2 of the paper).  The
:class:`InterferenceCombiner` builds that composite waveform; the
:class:`OverlapModel` draws the random start offsets that determine how much
of the two packets actually overlap, which §11.4 identifies as the main gap
between the theoretical 2x gain and the measured ~1.7x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.link import Link
from repro.constants import DEFAULT_OVERLAP_FRACTION, MAX_RANDOM_DELAY_SLOTS
from repro.exceptions import ChannelError
from repro.signal.noise import complex_gaussian_noise
from repro.signal.ops import overlap_add
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_probability


@dataclass(frozen=True)
class CollisionResult:
    """The composite waveform observed at a receiver during a collision.

    Attributes
    ----------
    signal:
        The received superposition including receiver noise.
    offsets:
        Start offset (in samples) of each component within the composite,
        in the order the components were supplied.
    overlap_fraction:
        Fraction of the *shorter* component that overlaps the other one
        (1.0 means full overlap, 0.0 means no overlap at all).
    """

    signal: ComplexSignal
    offsets: Tuple[int, ...]
    overlap_fraction: float


class OverlapModel:
    """Draws random start offsets for deliberately interfering transmissions.

    The paper's trigger protocol makes both senders start "immediately"
    after the trigger, but each inserts a small random delay of 1..32 slots
    (§7.2) and user-space jitter adds more, so on average only ~80 % of the
    two packets overlap (§11.4).  This model reproduces that: the first
    sender starts at offset 0 and the second sender's offset is drawn so
    the expected overlap matches ``mean_overlap``.

    Parameters
    ----------
    mean_overlap:
        Average fraction of the packets that should overlap (paper: 0.8).
    jitter:
        Half-width of the uniform jitter around the mean offset, expressed
        as a fraction of the packet length.
    min_offset:
        Minimum start offset in samples between the two packets.  The
        paper's protocol *enforces* incomplete overlap so that the pilot
        (and header) at the start and end of the collision stay
        interference-free (§7.2); protocols set this to the pilot + header
        length plus a small margin.
    rng:
        Random generator used to draw offsets.
    """

    def __init__(
        self,
        mean_overlap: float = DEFAULT_OVERLAP_FRACTION,
        jitter: float = 0.1,
        min_offset: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """See the class docstring for the parameter semantics."""
        self.mean_overlap = ensure_probability(mean_overlap, "mean_overlap")
        self.jitter = ensure_probability(jitter, "jitter")
        if min_offset < 0:
            raise ChannelError("min_offset must be non-negative")
        self.min_offset = int(min_offset)
        self._rng = rng if rng is not None else np.random.default_rng()

    def draw_offsets(self, packet_length: int) -> Tuple[int, int]:
        """Draw (first, second) start offsets in samples for a 2-packet collision."""
        if packet_length <= 0:
            raise ChannelError("packet length must be positive")
        mean_offset = (1.0 - self.mean_overlap) * packet_length
        low = max(0.0, mean_offset - self.jitter * packet_length)
        high = mean_offset + self.jitter * packet_length
        offset = int(round(self._rng.uniform(low, high)))
        offset = max(offset, min(self.min_offset, packet_length - 1))
        offset = min(max(offset, 0), packet_length - 1)
        return 0, offset

    def draw_slot_delays(self) -> Tuple[int, int]:
        """Draw the 1..32 random slot delays of the §7.2 randomisation scheme."""
        first = int(self._rng.integers(1, MAX_RANDOM_DELAY_SLOTS + 1))
        second = int(self._rng.integers(1, MAX_RANDOM_DELAY_SLOTS + 1))
        return first, second


class InterferenceCombiner:
    """Builds the waveform a receiver observes when several senders collide.

    Parameters
    ----------
    noise_power:
        Receiver noise power added to the composite.
    rng:
        Random generator for the noise realisation.
    """

    def __init__(self, noise_power: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        """See the class docstring for the parameter semantics."""
        if noise_power < 0:
            raise ChannelError("noise power must be non-negative")
        self.noise_power = float(noise_power)
        self._rng = rng if rng is not None else np.random.default_rng()

    def combine(
        self,
        components: Sequence[Tuple[ComplexSignal, Link, int]],
        tail_padding: int = 0,
    ) -> CollisionResult:
        """Superpose per-link-distorted transmissions at a receiver.

        Parameters
        ----------
        components:
            Sequence of ``(transmitted_signal, link, start_offset)``
            triples.  Each signal is distorted by its link (attenuation,
            phase, propagation delay — but *not* noise) and placed at its
            start offset; the results are summed.
        tail_padding:
            Extra silence appended after the last component ends, so
            detectors can observe the energy dropping back to the noise
            floor.

        Returns
        -------
        CollisionResult
        """
        if not components:
            raise ChannelError("at least one component is required")
        distorted: List[Tuple[ComplexSignal, int]] = []
        lengths: List[Tuple[int, int]] = []
        for signal, link, offset in components:
            if offset < 0:
                raise ChannelError("start offsets must be non-negative")
            shaped = link.distort(signal, rng=self._rng)
            distorted.append((shaped, int(offset)))
            lengths.append((int(offset), int(offset) + len(shaped)))
        total_length = max(end for _, end in lengths) + max(int(tail_padding), 0)
        composite = overlap_add(distorted, total_length=total_length)
        if self.noise_power > 0:
            noise = complex_gaussian_noise(len(composite), self.noise_power, self._rng)
            composite = ComplexSignal(composite.samples + noise)
        overlap = self._overlap_fraction(lengths)
        offsets = tuple(offset for _, offset in distorted)
        return CollisionResult(signal=composite, offsets=offsets, overlap_fraction=overlap)

    @staticmethod
    def _overlap_fraction(lengths: Sequence[Tuple[int, int]]) -> float:
        """Overlap of the first two components relative to the shorter one."""
        if len(lengths) < 2:
            return 1.0
        (start_a, end_a), (start_b, end_b) = lengths[0], lengths[1]
        overlap = max(0, min(end_a, end_b) - max(start_a, start_b))
        shorter = max(1, min(end_a - start_a, end_b - start_b))
        return overlap / shorter
