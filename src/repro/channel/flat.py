"""Flat (frequency-non-selective) fading: attenuation plus phase rotation.

This is the channel model of §5.3: a transmitted sample ``A_s e^{i theta}``
is received as ``h A_s e^{i (theta + gamma)}`` where ``h`` is the link
attenuation and ``gamma`` a constant phase offset determined by the path
length.  The model can optionally jitter both parameters slowly over the
packet to emulate the real-world drift that makes naive signal subtraction
fragile (§6: "Though we tend to think of those parameters as constant,
they do vary with time").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.model import Channel
from repro.exceptions import ChannelError
from repro.signal.samples import ComplexSignal
from repro.utils.validation import ensure_non_negative


class FlatFadingChannel(Channel):
    """Apply a (possibly slowly drifting) complex gain ``h * exp(i gamma)``.

    Parameters
    ----------
    attenuation:
        Amplitude gain ``h`` (0 < h typically <= 1).
    phase_shift:
        Constant phase offset ``gamma`` in radians.
    frequency_offset:
        Residual carrier frequency offset between the transmitter's and the
        receiver's oscillators, expressed in radians per sample.  Two
        independent radios always have a small CFO; it is what makes the
        relative phase of two interfering signals sweep over time, which in
        turn is why the paper's random-phase energy statistics (Eqs. 5-6)
        hold in practice.
    attenuation_drift:
        Standard deviation of a random-walk drift applied to the
        attenuation per sample (0 disables drift).
    phase_drift:
        Standard deviation (radians) of a random-walk drift applied to the
        phase per sample (0 disables drift).
    rng:
        Random generator for the drift processes.
    """

    def __init__(
        self,
        attenuation: float,
        phase_shift: float = 0.0,
        frequency_offset: float = 0.0,
        attenuation_drift: float = 0.0,
        phase_drift: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """See the class docstring for the parameter semantics."""
        if attenuation <= 0:
            raise ChannelError("attenuation must be positive")
        self.attenuation = float(attenuation)
        self.phase_shift = float(phase_shift)
        self.frequency_offset = float(frequency_offset)
        self.attenuation_drift = ensure_non_negative(attenuation_drift, "attenuation_drift")
        self.phase_drift = ensure_non_negative(phase_drift, "phase_drift")
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def complex_gain(self) -> complex:
        """The nominal complex channel coefficient ``h * exp(i gamma)``."""
        return self.attenuation * np.exp(1j * self.phase_shift)

    @property
    def power_gain(self) -> float:
        """Power attenuation ``h^2`` of the link."""
        return self.attenuation ** 2

    def apply(self, signal: ComplexSignal) -> ComplexSignal:
        """Apply the (possibly drifting) complex gain to every sample."""
        samples = signal.samples
        if samples.size == 0:
            return signal
        if (
            self.attenuation_drift == 0.0
            and self.phase_drift == 0.0
            and self.frequency_offset == 0.0
        ):
            return signal.scaled(self.complex_gain)
        index = np.arange(samples.size)
        phase = self.phase_shift + self.frequency_offset * index
        attenuation = np.full(samples.size, self.attenuation)
        if self.attenuation_drift > 0.0:
            attenuation = attenuation + np.cumsum(
                self._rng.normal(0.0, self.attenuation_drift, samples.size)
            )
            attenuation = np.maximum(attenuation, 1e-6)
        if self.phase_drift > 0.0:
            phase = phase + np.cumsum(self._rng.normal(0.0, self.phase_drift, samples.size))
        gains = attenuation * np.exp(1j * phase)
        return ComplexSignal(samples * gains)
