"""The impairment subsystem: one declarative config, applied to a topology.

:class:`ImpairmentConfig` describes the *optional* real-channel
imperfections an experiment wants on top of the baseline flat channel —
per-sender carrier frequency offset (§6's exploited imperfection) and
stochastic Rayleigh/Rician fading (§6's "they do vary with time") — and
:func:`apply_impairments` stamps them onto every
:class:`~repro.channel.link.Link` of an already-built topology.  The
composition order of the resulting per-link stage chain is documented in
``docs/CHANNELS.md``:

1. sender oscillator CFO (:class:`~repro.channel.cfo.CarrierFrequencyOffsetChannel`),
2. deterministic flat path response (:class:`~repro.channel.flat.FlatFadingChannel`),
3. stochastic fading (:mod:`repro.channel.fading`),
4. propagation delay, then receiver noise.

Everything defaults to *off*, and a disabled config is a strict no-op: it
touches no link and consumes **zero** random draws, which is what keeps
the pre-impairment figure references and golden fixtures byte-identical
(and the engine's cache digests stable — see
:meth:`repro.experiments.config.ExperimentConfig.snapshot`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Sequence

import numpy as np

from repro.channel.fading import FADING_KINDS, FADING_MODES
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # import at type-check time only: topology imports Link
    from repro.channel.link import Link
    from repro.network.topology import Topology

#: Dedicated :meth:`ExperimentConfig.run_rng` stream for impairment draws,
#: disjoint from every stream any trial already uses (the figure trials
#: occupy 0–3 / 10–13 / 20–22, the SIR/SNR sweeps 30 / 40–42, and the
#: scenario families live at 400+).
IMPAIRMENT_STREAM = 61


@dataclass(frozen=True)
class ImpairmentConfig:
    """Optional channel impairments, declared as data.

    Attributes
    ----------
    sender_cfo:
        Magnitude (radians per sample, ``>= 0``) of the per-sender
        oscillator offset.  Sender offsets are spread linearly from
        ``+sender_cfo`` down to ``-sender_cfo`` in node-id order, so any
        two distinct radios get *distinct* oscillators — the relative
        offset §6 exploits is never zero for a colliding pair, whatever
        the topology (see :meth:`sender_offsets`).  ``0`` disables the
        stage.
    fading:
        Stochastic fading family applied to every link: ``"none"``,
        ``"rayleigh"`` or ``"rician"``.
    rician_k_db:
        Rician K-factor in dB (ignored unless ``fading="rician"``).
    fading_mode:
        ``"block"`` (one fade per packet) or ``"drift"`` (in-packet
        Gauss–Markov evolution) — see :mod:`repro.channel.fading`.
    fading_doppler:
        Normalised fade rate for ``fading_mode="drift"``; must be 0 in
        block mode.
    """

    sender_cfo: float = 0.0
    fading: str = "none"
    rician_k_db: float = 6.0
    fading_mode: str = "block"
    fading_doppler: float = 0.0

    def __post_init__(self) -> None:
        """Validate the impairment declaration."""
        if not 0.0 <= self.sender_cfo < np.pi:
            raise ConfigurationError(
                "sender_cfo must lie in [0, pi) radians per sample"
            )
        if self.fading not in FADING_KINDS:
            raise ConfigurationError(
                f"unknown fading kind {self.fading!r}; choose from {FADING_KINDS}"
            )
        if self.fading_mode not in FADING_MODES:
            raise ConfigurationError(
                f"unknown fading mode {self.fading_mode!r}; choose from {FADING_MODES}"
            )
        if not 0.0 <= self.fading_doppler < 1.0:
            raise ConfigurationError("fading_doppler must lie in [0, 1)")
        if self.fading_mode == "block" and self.fading_doppler != 0.0:
            raise ConfigurationError("block fading takes no doppler rate")

    @property
    def enabled(self) -> bool:
        """Is any impairment active at all?  ``False`` means strict no-op."""
        return self.sender_cfo != 0.0 or self.fading != "none"

    def sender_offsets(self, senders: Sequence[int]) -> Dict[int, float]:
        """Deterministic, pairwise-distinct per-sender oscillator offsets.

        Offsets are spread linearly from ``+sender_cfo`` (first sender in
        the given sorted order) down to ``-sender_cfo`` (last), so every
        pair of distinct radios differs by at least
        ``2·sender_cfo/(n-1)`` — an alternating-sign scheme would hand
        *identical* oscillators to the actually-colliding senders of the
        chain and "X" topologies (nodes 1 and 3), which is exactly the
        phase-locked case the subsystem exists to avoid.  No randomness
        is consumed, so the ``cfo_sweep`` axis stays an exact Δf: in the
        three-node Alice–Bob exchange the two colliding senders differ
        by precisely ``sender_cfo``.
        """
        count = len(senders)
        if count < 2:
            return {sender: self.sender_cfo for sender in senders}
        return {
            sender: self.sender_cfo * (1.0 - 2.0 * index / (count - 1))
            for index, sender in enumerate(senders)
        }


def apply_impairments(
    topology: "Topology",
    impairments: ImpairmentConfig,
    rng: np.random.Generator,
) -> "Topology":
    """Stamp an impairment config onto every link of a topology, in place.

    A disabled config returns immediately without touching the topology
    or drawing from ``rng``.  When enabled:

    * every directed link out of a sender gets that sender's oscillator
      offset (:meth:`ImpairmentConfig.sender_offsets`) as
      ``Link.sender_cfo`` — one oscillator per radio, consistent across
      all of its outgoing links;
    * every link gets the fading family/mode/doppler fields, and Rician
      links additionally draw a per-link LOS phase from ``rng`` (links
      are visited in sorted ``(source, destination)`` order, so the draw
      sequence is deterministic).

    Returns the same topology object for chaining.
    """
    if not impairments.enabled:
        return topology
    offsets = impairments.sender_offsets(topology.nodes)
    for source, destination in sorted(topology.graph.edges):
        impair_link(
            topology.link(source, destination), offsets[source], impairments, rng
        )
    return topology


def impair_link(
    link: "Link",
    sender_offset: float,
    impairments: ImpairmentConfig,
    rng: np.random.Generator,
) -> "Link":
    """Stamp one link with a sender's oscillator offset and the fading fields.

    The single-link unit behind :func:`apply_impairments`, also used by
    experiments that build :class:`~repro.channel.link.Link` objects by
    hand (the Fig. 13 SIR sweep).  Rician links draw their LOS phase from
    ``rng``; everything else is deterministic.  Returns the same link.
    """
    if impairments.sender_cfo != 0.0:
        link.sender_cfo = sender_offset
    if impairments.fading != "none":
        link.fading = impairments.fading
        link.fading_k_db = impairments.rician_k_db
        link.fading_mode = impairments.fading_mode
        link.fading_doppler = impairments.fading_doppler
        if impairments.fading == "rician":
            link.fading_los_phase = float(rng.uniform(-np.pi, np.pi))
    return link
