"""Additive white Gaussian noise channel stage."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.model import Channel
from repro.exceptions import ChannelError
from repro.signal.noise import complex_gaussian_noise
from repro.signal.samples import ComplexSignal


class AWGNChannel(Channel):
    """Add circularly-symmetric complex Gaussian noise of a fixed power.

    Parameters
    ----------
    noise_power:
        Total complex noise power ``E[|z|^2]`` added per sample.  A value
        of 0 produces a noiseless channel (useful in unit tests).
    rng:
        Random generator; pass a seeded generator for reproducible runs.
    """

    def __init__(self, noise_power: float, rng: Optional[np.random.Generator] = None) -> None:
        """See the class docstring for the parameter semantics."""
        if noise_power < 0:
            raise ChannelError("noise power must be non-negative")
        self.noise_power = float(noise_power)
        self._rng = rng if rng is not None else np.random.default_rng()

    def apply(self, signal: ComplexSignal) -> ComplexSignal:
        """Add one fresh noise realisation to the signal."""
        if self.noise_power == 0.0 or len(signal) == 0:
            return signal
        noise = complex_gaussian_noise(len(signal), self.noise_power, self._rng)
        return ComplexSignal(signal.samples + noise)
