"""A directed wireless link between two nodes.

A :class:`Link` bundles the per-hop channel parameters the simulator needs
when it delivers a transmission from one node to another: amplitude
attenuation, phase offset, propagation delay and the receiver-side noise
power.  It can be converted to a :class:`~repro.channel.model.ChannelChain`
for direct application to a waveform, and exposes the derived quantities
(power gain, per-hop SNR) used by the capacity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.awgn import AWGNChannel
from repro.channel.delay import DelayChannel
from repro.channel.flat import FlatFadingChannel
from repro.channel.model import ChannelChain
from repro.exceptions import ChannelError
from repro.signal.samples import ComplexSignal
from repro.utils.db import power_ratio_to_db


@dataclass
class Link:
    """Directed link parameters from one node to another.

    Parameters
    ----------
    attenuation:
        Amplitude gain ``h`` of the link.
    phase_shift:
        Phase offset ``gamma`` (radians) introduced by the path.
    propagation_delay:
        Integer sample delay of the path.
    noise_power:
        Noise power added at the *receiver* of this link.
    frequency_offset:
        Residual carrier frequency offset (radians per sample) between the
        transmitter's and the receiver's oscillators.
    attenuation_drift, phase_drift:
        Optional slow drift of the channel coefficient (see
        :class:`~repro.channel.flat.FlatFadingChannel`).
    """

    attenuation: float = 1.0
    phase_shift: float = 0.0
    propagation_delay: int = 0
    noise_power: float = 0.0
    frequency_offset: float = 0.0
    attenuation_drift: float = 0.0
    phase_drift: float = 0.0

    def __post_init__(self) -> None:
        if self.attenuation <= 0:
            raise ChannelError("link attenuation must be positive")
        if self.propagation_delay < 0:
            raise ChannelError("propagation delay must be non-negative")
        if self.noise_power < 0:
            raise ChannelError("noise power must be non-negative")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def complex_gain(self) -> complex:
        """Nominal complex coefficient ``h * exp(i gamma)`` of the link."""
        return self.attenuation * np.exp(1j * self.phase_shift)

    @property
    def power_gain(self) -> float:
        """Power attenuation ``h^2``."""
        return self.attenuation ** 2

    def received_power(self, transmit_power: float) -> float:
        """Power observed at the receiver for a given transmit power."""
        if transmit_power < 0:
            raise ChannelError("transmit power must be non-negative")
        return transmit_power * self.power_gain

    def snr_db(self, transmit_power: float) -> float:
        """Per-hop SNR in dB for a given transmit power."""
        if self.noise_power <= 0:
            raise ChannelError("SNR is undefined for a noiseless link")
        return power_ratio_to_db(self.received_power(transmit_power) / self.noise_power)

    # ------------------------------------------------------------------
    # Application to waveforms
    # ------------------------------------------------------------------
    def to_chain(
        self,
        include_noise: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> ChannelChain:
        """Build the channel-stage chain corresponding to this link."""
        stages = [
            FlatFadingChannel(
                attenuation=self.attenuation,
                phase_shift=self.phase_shift,
                frequency_offset=self.frequency_offset,
                attenuation_drift=self.attenuation_drift,
                phase_drift=self.phase_drift,
                rng=rng,
            ),
            DelayChannel(self.propagation_delay),
        ]
        if include_noise and self.noise_power > 0:
            stages.append(AWGNChannel(self.noise_power, rng=rng))
        return ChannelChain(stages)

    def propagate(
        self,
        signal: ComplexSignal,
        include_noise: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> ComplexSignal:
        """Apply the link's distortion (and optionally noise) to a waveform."""
        return self.to_chain(include_noise=include_noise, rng=rng).apply(signal)

    def distort(self, signal: ComplexSignal, rng: Optional[np.random.Generator] = None) -> ComplexSignal:
        """Apply only the deterministic distortion (no receiver noise).

        The medium model uses this when it superposes several concurrent
        transmissions: each is distorted by its own link, the sum is formed,
        and a single noise realisation is added at the receiver.
        """
        return self.propagate(signal, include_noise=False, rng=rng)
