"""A directed wireless link between two nodes.

A :class:`Link` bundles the per-hop channel parameters the simulator needs
when it delivers a transmission from one node to another: amplitude
attenuation, phase offset, propagation delay and the receiver-side noise
power.  It can be converted to a :class:`~repro.channel.model.ChannelChain`
for direct application to a waveform, and exposes the derived quantities
(power gain, per-hop SNR) used by the capacity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.channel.awgn import AWGNChannel
from repro.channel.cfo import CarrierFrequencyOffsetChannel
from repro.channel.delay import DelayChannel
from repro.channel.fading import FADING_KINDS, make_fading_channel
from repro.channel.flat import FlatFadingChannel
from repro.channel.model import Channel, ChannelChain
from repro.exceptions import ChannelError
from repro.signal.samples import ComplexSignal
from repro.utils.db import power_ratio_to_db


@dataclass
class Link:
    """Directed link parameters from one node to another.

    Parameters
    ----------
    attenuation:
        Amplitude gain ``h`` of the link.
    phase_shift:
        Phase offset ``gamma`` (radians) introduced by the path.
    propagation_delay:
        Integer sample delay of the path.
    noise_power:
        Noise power added at the *receiver* of this link.
    frequency_offset:
        Residual carrier frequency offset (radians per sample) between the
        transmitter's and the receiver's oscillators.
    attenuation_drift, phase_drift:
        Optional slow drift of the channel coefficient (see
        :class:`~repro.channel.flat.FlatFadingChannel`).
    sender_cfo:
        Additional oscillator offset of the *transmitting* radio (radians
        per sample), applied as a dedicated
        :class:`~repro.channel.cfo.CarrierFrequencyOffsetChannel` stage
        ahead of the path response.  The impairment subsystem
        (:mod:`repro.channel.impairments`) sets the same value on every
        outgoing link of a sender — one oscillator per radio.  ``0``
        (the default) adds no stage, keeping the chain byte-identical to
        the pre-impairment behaviour.
    fading, fading_k_db, fading_mode, fading_doppler, fading_los_phase:
        Stochastic small-scale fading of this path (see
        :mod:`repro.channel.fading`): the family (``"none"`` disables the
        stage entirely), the Rician K-factor in dB, the block/drift time
        structure, the drift rate, and the Rician LOS phase.
    """

    attenuation: float = 1.0
    phase_shift: float = 0.0
    propagation_delay: int = 0
    noise_power: float = 0.0
    frequency_offset: float = 0.0
    attenuation_drift: float = 0.0
    phase_drift: float = 0.0
    sender_cfo: float = 0.0
    fading: str = "none"
    fading_k_db: float = 6.0
    fading_mode: str = "block"
    fading_doppler: float = 0.0
    fading_los_phase: float = 0.0

    def __post_init__(self) -> None:
        """Validate the link parameters."""
        if self.attenuation <= 0:
            raise ChannelError("link attenuation must be positive")
        if self.propagation_delay < 0:
            raise ChannelError("propagation delay must be non-negative")
        if self.noise_power < 0:
            raise ChannelError("noise power must be non-negative")
        if self.fading not in FADING_KINDS:
            raise ChannelError(
                f"unknown fading kind {self.fading!r}; choose from {FADING_KINDS}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def complex_gain(self) -> complex:
        """Nominal complex coefficient ``h * exp(i gamma)`` of the link."""
        return self.attenuation * np.exp(1j * self.phase_shift)

    @property
    def power_gain(self) -> float:
        """Power attenuation ``h^2``."""
        return self.attenuation ** 2

    def received_power(self, transmit_power: float) -> float:
        """Power observed at the receiver for a given transmit power."""
        if transmit_power < 0:
            raise ChannelError("transmit power must be non-negative")
        return transmit_power * self.power_gain

    def snr_db(self, transmit_power: float) -> float:
        """Per-hop SNR in dB for a given transmit power."""
        if self.noise_power <= 0:
            raise ChannelError("SNR is undefined for a noiseless link")
        return power_ratio_to_db(self.received_power(transmit_power) / self.noise_power)

    # ------------------------------------------------------------------
    # Application to waveforms
    # ------------------------------------------------------------------
    def to_chain(
        self,
        include_noise: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> ChannelChain:
        """Build the channel-stage chain corresponding to this link.

        Composition order (``docs/CHANNELS.md``): sender oscillator CFO,
        flat path response, stochastic fading, propagation delay, then
        receiver noise.  The CFO and fading stages only exist when their
        link fields are active, so a link without impairments builds the
        exact pre-impairment chain and consumes no extra randomness.
        """
        stages: List[Channel] = []
        if self.sender_cfo != 0.0:
            stages.append(CarrierFrequencyOffsetChannel(self.sender_cfo))
        stages.append(
            FlatFadingChannel(
                attenuation=self.attenuation,
                phase_shift=self.phase_shift,
                frequency_offset=self.frequency_offset,
                attenuation_drift=self.attenuation_drift,
                phase_drift=self.phase_drift,
                rng=rng,
            )
        )
        fading_stage = make_fading_channel(
            self.fading,
            k_db=self.fading_k_db,
            los_phase=self.fading_los_phase,
            mode=self.fading_mode,
            doppler=self.fading_doppler,
            rng=rng,
        )
        if fading_stage is not None:
            stages.append(fading_stage)
        stages.append(DelayChannel(self.propagation_delay))
        if include_noise and self.noise_power > 0:
            stages.append(AWGNChannel(self.noise_power, rng=rng))
        return ChannelChain(stages)

    def propagate(
        self,
        signal: ComplexSignal,
        include_noise: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> ComplexSignal:
        """Apply the link's distortion (and optionally noise) to a waveform."""
        return self.to_chain(include_noise=include_noise, rng=rng).apply(signal)

    def distort(self, signal: ComplexSignal, rng: Optional[np.random.Generator] = None) -> ComplexSignal:
        """Apply only the deterministic distortion (no receiver noise).

        The medium model uses this when it superposes several concurrent
        transmissions: each is distorted by its own link, the sum is formed,
        and a single noise realisation is added at the receiver.
        """
        return self.propagate(signal, include_noise=False, rng=rng)
