"""Base channel interface and composition.

A channel stage is anything that transforms a transmitted
:class:`~repro.signal.samples.ComplexSignal` into a received one.  Stages
are composable with :class:`ChannelChain`, which applies them in order —
e.g. flat fading, then a start delay, then receiver noise.
"""

from __future__ import annotations

import abc
from typing import Iterable, List

from repro.exceptions import ChannelError
from repro.signal.samples import ComplexSignal


class Channel(abc.ABC):
    """A transformation applied to a signal between transmitter and receiver."""

    @abc.abstractmethod
    def apply(self, signal: ComplexSignal) -> ComplexSignal:
        """Return the signal as observed after this channel stage."""

    def __call__(self, signal: ComplexSignal) -> ComplexSignal:
        """Alias of :meth:`apply`."""
        return self.apply(signal)


class IdentityChannel(Channel):
    """A channel that passes the signal through unchanged (ideal wire)."""

    def apply(self, signal: ComplexSignal) -> ComplexSignal:
        """Return the signal unchanged."""
        return signal


class ChannelChain(Channel):
    """Apply a sequence of channel stages in order."""

    def __init__(self, stages: Iterable[Channel]) -> None:
        """Validate and store the stages, in application order."""
        self.stages: List[Channel] = list(stages)
        for stage in self.stages:
            if not isinstance(stage, Channel):
                raise ChannelError(f"not a Channel stage: {stage!r}")

    def apply(self, signal: ComplexSignal) -> ComplexSignal:
        """Pipe the signal through every stage, first to last."""
        out = signal
        for stage in self.stages:
            out = stage.apply(out)
        return out

    def __len__(self) -> int:
        """Number of stages in the chain."""
        return len(self.stages)
