"""Amplify-and-forward relay behaviour as a channel stage.

In the Alice–Bob and "X" topologies the router does not decode the
interfered signal; it simply re-amplifies the received waveform (including
the noise it received with it) to its own power budget and rebroadcasts it
(§7.5, §8).  This stage models exactly that: the amplification factor is
chosen so the *output* power equals the relay's transmit power, matching
the constraint ``A = sqrt(P / (P h_AR^2 + P h_BR^2 + 1))`` used in the
capacity analysis.
"""

from __future__ import annotations


import numpy as np

from repro.channel.model import Channel
from repro.exceptions import ChannelError
from repro.signal.samples import ComplexSignal


class AmplifyAndForwardRelayChannel(Channel):
    """Rescale a received waveform to the relay's transmit power budget.

    Parameters
    ----------
    transmit_power:
        The relay's output power budget ``P`` (linear units).
    measure_over_active_samples:
        When ``True`` (default) the scaling factor is computed from the
        samples whose energy is above 10 % of the peak, so long stretches
        of leading / trailing silence in a partially-overlapped collision
        do not inflate the amplification factor.
    """

    def __init__(self, transmit_power: float, measure_over_active_samples: bool = True) -> None:
        """See the class docstring for the parameter semantics."""
        if transmit_power <= 0:
            raise ChannelError("relay transmit power must be positive")
        self.transmit_power = float(transmit_power)
        self.measure_over_active_samples = bool(measure_over_active_samples)

    def amplification_factor(self, signal: ComplexSignal) -> float:
        """Linear amplitude gain the relay applies to this waveform."""
        samples = signal.samples
        if samples.size == 0:
            raise ChannelError("cannot amplify an empty signal")
        energy = np.abs(samples) ** 2
        if self.measure_over_active_samples:
            peak = float(np.max(energy))
            if peak == 0.0:
                raise ChannelError("cannot amplify an all-zero signal")
            active = energy[energy > 0.1 * peak]
            measured_power = float(np.mean(active))
        else:
            measured_power = float(np.mean(energy))
        if measured_power == 0.0:
            raise ChannelError("cannot amplify an all-zero signal")
        return float(np.sqrt(self.transmit_power / measured_power))

    def apply(self, signal: ComplexSignal) -> ComplexSignal:
        """Rescale the waveform to the relay's transmit power budget."""
        factor = self.amplification_factor(signal)
        return signal.scaled(factor)
