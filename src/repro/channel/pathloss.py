"""Log-distance path loss: link gains derived from node geometry.

The topology factories historically *hand-set* every link's attenuation
(``mean_attenuation`` plus jitter); the path-loss model derives it from
the node coordinates instead, so generated topologies get geometry-driven
SNR and SIR.  The model is the standard log-distance law

.. math::

    PL(d) = PL(d_0) + 10\\,n\\,\\log_{10}(d / d_0)  \\qquad (d \\ge d_0)

with reference distance ``d_0``, path-loss exponent ``n`` (2 in free
space, 2.7–4 indoors — the paper's testbed is an indoor 802.11-class
deployment, §8) and ``PL(d_0)`` expressed here as the *amplitude* gain at
the reference distance.  Distances at or below ``d_0`` see the reference
gain; the amplitude never falls below ``min_attenuation`` so a generated
:class:`~repro.channel.link.Link` always keeps a positive gain.

:func:`repro.network.generator.generate_geometric_mesh` feeds node
placements through this model, and the ``geometry_mesh`` scenario sweeps
traffic over the resulting meshes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.exceptions import ChannelError
from repro.utils.db import linear_to_db

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss expressed as an amplitude gain law.

    Attributes
    ----------
    exponent:
        Path-loss exponent ``n`` (power decays as ``d^-n``); 2 is free
        space, 2.7 a typical indoor office value.
    reference_distance:
        Close-in reference distance ``d_0`` (same unit as the node
        coordinates — the generators use unit-square fractions).
    reference_attenuation:
        Amplitude gain at ``d_0`` (the "measured one metre" anchor of the
        log-distance model).
    min_attenuation:
        Floor on the returned amplitude gain; keeps far links representable
        as valid :class:`~repro.channel.link.Link` attenuations instead of
        underflowing to zero.
    """

    exponent: float = 2.7
    reference_distance: float = 0.1
    reference_attenuation: float = 0.95
    min_attenuation: float = 0.02

    def __post_init__(self) -> None:
        """Validate the model parameters."""
        if self.exponent <= 0:
            raise ChannelError("path-loss exponent must be positive")
        if self.reference_distance <= 0:
            raise ChannelError("reference_distance must be positive")
        if not 0.0 < self.reference_attenuation <= 1.5:
            raise ChannelError("reference_attenuation must lie in (0, 1.5]")
        if not 0.0 < self.min_attenuation <= self.reference_attenuation:
            raise ChannelError(
                "min_attenuation must lie in (0, reference_attenuation]"
            )

    def attenuation(self, distance: ArrayLike) -> ArrayLike:
        """Amplitude gain at ``distance`` (scalar or array, same shape out).

        Power follows ``(d_0/d)^n`` beyond the reference distance, so the
        amplitude follows ``(d_0/d)^{n/2}``; inside ``d_0`` the gain is
        pinned at the reference value.
        """
        arr = np.asarray(distance, dtype=float)
        if np.any(arr < 0):
            raise ChannelError("distance must be non-negative")
        ratio = self.reference_distance / np.maximum(arr, self.reference_distance)
        gain = self.reference_attenuation * np.power(ratio, self.exponent / 2.0)
        gain = np.maximum(gain, self.min_attenuation)
        if np.isscalar(distance) or np.ndim(distance) == 0:
            return float(gain)
        return gain

    def path_loss_db(self, distance: ArrayLike) -> ArrayLike:
        """Path loss in dB at ``distance`` (positive numbers = loss)."""
        gain = self.attenuation(distance)
        result = -linear_to_db(gain)
        return result

    def range_for(self, min_gain: float) -> float:
        """Largest distance whose (unfloored) amplitude gain is ``min_gain``.

        The inverse of :meth:`attenuation` on its power-law branch — handy
        for choosing a generator radius that matches a link budget.
        """
        if not 0.0 < min_gain <= self.reference_attenuation:
            raise ChannelError(
                "min_gain must lie in (0, reference_attenuation]"
            )
        return float(
            self.reference_distance
            * (self.reference_attenuation / min_gain) ** (2.0 / self.exponent)
        )

    @classmethod
    def free_space(cls, **overrides: float) -> "PathLossModel":
        """The free-space law (``n = 2``) with optional field overrides."""
        defaults = {"exponent": 2.0}
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def indoor_office(cls, **overrides: float) -> "PathLossModel":
        """A typical indoor-office law (``n = 3.1``) with optional overrides."""
        defaults = {"exponent": 3.1}
        defaults.update(overrides)
        return cls(**defaults)
