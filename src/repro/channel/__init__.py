"""Wireless channel models.

The paper approximates the effect of a wireless channel on a narrowband
signal as an attenuation plus a phase shift (§5.3, §6), with additive white
Gaussian noise at the receiver and an unknown time offset between
unsynchronised transmitters.  This package provides those effects as
composable channel stages, a :class:`Link` that bundles the per-hop
parameters, and the interference combiner that models concurrent
transmissions arriving at one receiver.

Beyond the baseline flat channel, the *impairment subsystem* models the
real-channel imperfections the paper's decoding strategy leans on:
per-sender carrier frequency offset (:mod:`repro.channel.cfo`, the §6
mechanism), stochastic Rayleigh/Rician fading
(:mod:`repro.channel.fading`) and geometry-driven path loss
(:mod:`repro.channel.pathloss`), all declared through one
:class:`ImpairmentConfig` and stamped onto a topology with
:func:`apply_impairments`.  See ``docs/CHANNELS.md`` for the stage
catalogue and composition order.
"""

from repro.channel.model import Channel, ChannelChain, IdentityChannel
from repro.channel.flat import FlatFadingChannel
from repro.channel.awgn import AWGNChannel
from repro.channel.cfo import CarrierFrequencyOffsetChannel
from repro.channel.delay import DelayChannel
from repro.channel.fading import (
    FADING_KINDS,
    FADING_MODES,
    FadingChannel,
    RayleighFadingChannel,
    RicianFadingChannel,
    make_fading_channel,
)
from repro.channel.link import Link
from repro.channel.pathloss import PathLossModel
from repro.channel.relay import AmplifyAndForwardRelayChannel
from repro.channel.impairments import (
    IMPAIRMENT_STREAM,
    ImpairmentConfig,
    apply_impairments,
    impair_link,
)
from repro.channel.interference import InterferenceCombiner, OverlapModel, CollisionResult

__all__ = [
    "AWGNChannel",
    "AmplifyAndForwardRelayChannel",
    "CarrierFrequencyOffsetChannel",
    "Channel",
    "ChannelChain",
    "CollisionResult",
    "DelayChannel",
    "FADING_KINDS",
    "FADING_MODES",
    "FadingChannel",
    "FlatFadingChannel",
    "IMPAIRMENT_STREAM",
    "IdentityChannel",
    "ImpairmentConfig",
    "InterferenceCombiner",
    "Link",
    "OverlapModel",
    "PathLossModel",
    "RayleighFadingChannel",
    "RicianFadingChannel",
    "apply_impairments",
    "impair_link",
    "make_fading_channel",
]
