"""Wireless channel models.

The paper approximates the effect of a wireless channel on a narrowband
signal as an attenuation plus a phase shift (§5.3, §6), with additive white
Gaussian noise at the receiver and an unknown time offset between
unsynchronised transmitters.  This package provides those effects as
composable channel stages, a :class:`Link` that bundles the per-hop
parameters, and the interference combiner that models concurrent
transmissions arriving at one receiver.
"""

from repro.channel.model import Channel, ChannelChain, IdentityChannel
from repro.channel.flat import FlatFadingChannel
from repro.channel.awgn import AWGNChannel
from repro.channel.delay import DelayChannel
from repro.channel.link import Link
from repro.channel.relay import AmplifyAndForwardRelayChannel
from repro.channel.interference import InterferenceCombiner, OverlapModel, CollisionResult

__all__ = [
    "AWGNChannel",
    "AmplifyAndForwardRelayChannel",
    "Channel",
    "ChannelChain",
    "CollisionResult",
    "DelayChannel",
    "FlatFadingChannel",
    "IdentityChannel",
    "InterferenceCombiner",
    "Link",
    "OverlapModel",
]
